package remote_test

import (
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"godiva/internal/core"
	"godiva/internal/genx"
	"godiva/internal/remote"
)

// testVars is the variable subset the tests fetch: one node vector and one
// element scalar, exercising both layouts.
var testVars = []string{"velocity", "stress_avg"}

// testSpec is a small dataset: 4 snapshots x 2 files, 3 blocks.
func testSpec() genx.Spec {
	s := genx.Scaled(32)
	s.Snapshots = 4
	return s
}

// writeDataset generates spec's snapshot files in a temp dir.
func writeDataset(t *testing.T, spec genx.Spec) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := genx.WriteDataset(spec, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// startServer serves dir on the loopback interface for the test's duration.
func startServer(t *testing.T, dir string, faults remote.Faults) *remote.Server {
	t.Helper()
	srv, err := remote.Serve(remote.ServerOptions{Dir: dir, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return srv
}

// defineTestSchema defines a minimal per-block record type: two key fields,
// the mesh arrays and the test variables.
func defineTestSchema(t *testing.T, db *core.DB) {
	t.Helper()
	fields := []struct {
		name string
		typ  core.DataType
		size int
		key  bool
	}{
		{"block", core.String, 11, true},
		{"step", core.String, 9, true},
		{"coords", core.Float64, core.Unknown, false},
		{"conn", core.Int32, core.Unknown, false},
		{"gids", core.Int64, core.Unknown, false},
		{"velocity", core.Float64, core.Unknown, false},
		{"stress_avg", core.Float64, core.Unknown, false},
	}
	for _, f := range fields {
		if err := db.DefineField(f.name, f.typ, f.size); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DefineRecordType("blk", 2); err != nil {
		t.Fatal(err)
	}
	for _, f := range fields {
		if err := db.InsertField("blk", f.name, f.key); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CommitRecordType("blk"); err != nil {
		t.Fatal(err)
	}
}

// commitTestBlock is the CommitFunc of the test schema; it copies every
// buffer out of the (possibly shared) payload.
func commitTestBlock(u *core.Unit, bd *genx.BlockData) error {
	rec, err := u.NewRecord("blk")
	if err != nil {
		return err
	}
	if err := rec.SetString("block", bd.Name); err != nil {
		return err
	}
	if err := rec.SetString("step", bd.StepID); err != nil {
		return err
	}
	fill := func(field string, data []float64) error {
		buf, err := rec.AllocFieldBuffer(field, 8*len(data))
		if err != nil {
			return err
		}
		dst, err := buf.Float64s()
		if err != nil {
			return err
		}
		copy(dst, data)
		return nil
	}
	if err := fill("coords", bd.Mesh.Coords); err != nil {
		return err
	}
	buf, err := rec.AllocFieldBuffer("conn", 4*len(bd.Mesh.Tets))
	if err != nil {
		return err
	}
	conn, err := buf.Int32s()
	if err != nil {
		return err
	}
	copy(conn, bd.Mesh.Tets)
	buf, err = rec.AllocFieldBuffer("gids", 8*len(bd.Mesh.GlobalNode))
	if err != nil {
		return err
	}
	gids, err := buf.Int64s()
	if err != nil {
		return err
	}
	copy(gids, bd.Mesh.GlobalNode)
	if err := fill("velocity", bd.Node["velocity"]); err != nil {
		return err
	}
	if err := fill("stress_avg", bd.Elem["stress_avg"]); err != nil {
		return err
	}
	return u.DB().CommitRecord(rec)
}

// snapResolver resolves "snap_NNNN" to the snapshot's files in the server's
// namespace.
func snapResolver(spec genx.Spec) remote.Resolver {
	return func(unit string) ([]string, error) {
		var step int
		if n, _ := fmt.Sscanf(unit, "snap_%d", &step); n != 1 {
			return nil, fmt.Errorf("bad unit name %q", unit)
		}
		return spec.SnapshotFiles("", step), nil
	}
}

func TestPingAndSpec(t *testing.T) {
	spec := testSpec()
	srv := startServer(t, writeDataset(t, spec), remote.Faults{})
	c := remote.NewClient(remote.ClientOptions{Addr: srv.Addr()})
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if got.Snapshots != spec.Snapshots || got.FilesPerSnapshot != spec.FilesPerSnapshot ||
		got.Blocks != spec.Blocks || got.DT != spec.DT {
		t.Fatalf("Spec() = %+v, want shape of %+v", got, spec)
	}
}

// TestEndToEndWithFaults is the acceptance test: godivad on the loopback
// interface over a generated dataset, a DB with four I/O workers prefetching
// every unit through remote read functions while the server injects 10%
// faults (half dropped mid-payload, half retryable errors). Retries must
// absorb every fault, and the committed buffers must be byte-identical to
// local SHDF reads.
func TestEndToEndWithFaults(t *testing.T) {
	spec := testSpec()
	dir := writeDataset(t, spec)
	srv := startServer(t, dir, remote.Faults{Seed: 42, DropFrac: 0.05, ErrFrac: 0.05})
	c := remote.NewClient(remote.ClientOptions{Addr: srv.Addr(), PoolSize: 4})
	defer c.Close()

	db := core.Open(core.Options{MemoryLimit: 256 << 20, BackgroundIO: true, IOWorkers: 4})
	defer db.Close()
	defineTestSchema(t, db)
	db.RegisterStatsSource("remote", func() any { return c.Stats() })

	read := remote.NewReadFunc(c, snapResolver(spec), testVars, commitTestBlock)
	for s := 0; s < spec.Snapshots; s++ {
		if err := db.AddUnit(fmt.Sprintf("snap_%04d", s), read); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < spec.Snapshots; s++ {
		if err := db.WaitUnit(fmt.Sprintf("snap_%04d", s)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.UnitsFailed != 0 {
		t.Fatalf("%d units failed; retries should absorb injected faults", st.UnitsFailed)
	}
	if st.UnitsRead != int64(spec.Snapshots) {
		t.Fatalf("UnitsRead = %d, want %d", st.UnitsRead, spec.Snapshots)
	}

	// Every committed buffer must match a local read of the same file,
	// bit for bit.
	sameF64 := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	r := &genx.Reader{}
	for s := 0; s < spec.Snapshots; s++ {
		for _, path := range spec.SnapshotFiles(dir, s) {
			h, err := r.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range h.Blocks() {
				bd, err := h.ReadBlock(e, testVars)
				if err != nil {
					t.Fatal(err)
				}
				check := func(field string, want []float64) {
					buf, err := db.GetFieldBuffer("blk", field, bd.Name, bd.StepID)
					if err != nil {
						t.Fatalf("%s %s %s: %v", bd.StepID, bd.Name, field, err)
					}
					got, err := buf.Float64s()
					if err != nil {
						t.Fatal(err)
					}
					if !sameF64(got, want) {
						t.Fatalf("%s %s %s: remote payload differs from local read",
							bd.StepID, bd.Name, field)
					}
				}
				check("coords", bd.Mesh.Coords)
				check("velocity", bd.Node["velocity"])
				check("stress_avg", bd.Elem["stress_avg"])
				connBuf, err := db.GetFieldBuffer("blk", "conn", bd.Name, bd.StepID)
				if err != nil {
					t.Fatal(err)
				}
				conn, err := connBuf.Int32s()
				if err != nil {
					t.Fatal(err)
				}
				if len(conn) != len(bd.Mesh.Tets) {
					t.Fatalf("%s %s: conn length %d, want %d", bd.StepID, bd.Name, len(conn), len(bd.Mesh.Tets))
				}
				for i := range conn {
					if conn[i] != bd.Mesh.Tets[i] {
						t.Fatalf("%s %s: conn[%d] = %d, want %d", bd.StepID, bd.Name, i, conn[i], bd.Mesh.Tets[i])
					}
				}
			}
			h.Close()
		}
	}
	if ss := srv.Stats(); ss.FaultsInjected == 0 {
		t.Logf("note: no faults were drawn this run (seed %d)", 42)
	} else {
		t.Logf("absorbed %d injected faults over %d RPCs (%d client retries)",
			ss.FaultsInjected, ss.RPCs, c.Stats().Retries)
	}
}

// A server that is down when the unit is first read must fail the fetch
// after retries, and the failure must propagate through the read function
// into the unit's failed state and Stats.UnitsFailed.
func TestServerDownAtOpen(t *testing.T) {
	// Grab a loopback port with no listener behind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	spec := testSpec()
	c := remote.NewClient(remote.ClientOptions{
		Addr:        addr,
		MaxRetries:  2,
		RetryBase:   time.Millisecond,
		DialTimeout: 200 * time.Millisecond,
	})
	defer c.Close()

	db := core.Open(core.Options{MemoryLimit: 64 << 20, BackgroundIO: true, IOWorkers: 2})
	defer db.Close()
	defineTestSchema(t, db)
	read := remote.NewReadFunc(c, snapResolver(spec), testVars, commitTestBlock)
	if err := db.AddUnit("snap_0000", read); err != nil {
		t.Fatal(err)
	}
	err = db.WaitUnit("snap_0000")
	if !errors.Is(err, core.ErrUnitFailed) {
		t.Fatalf("WaitUnit = %v, want ErrUnitFailed", err)
	}
	if !strings.Contains(err.Error(), "attempts failed") {
		t.Fatalf("failure should surface retry exhaustion, got: %v", err)
	}
	if st := db.Stats(); st.UnitsFailed != 1 {
		t.Fatalf("UnitsFailed = %d, want 1", st.UnitsFailed)
	}
	// The pipelined read function asks for both of the unit's files in one
	// batch, so the dead server fails 2 logical fetches over a single wire
	// stream: 1 + MaxRetries RPC attempts, 2 retries, one error per fetch.
	if rs := c.Stats(); rs.Errors != 2 || rs.Retries != 2 || rs.RPCs != 3 {
		t.Fatalf("client stats = %+v, want 2 errors after 2 retries on 3 attempts", rs)
	}
}

// A connection dropped mid-payload on every attempt must exhaust retries;
// once the fault clears, the same client must recover.
func TestDropMidPayload(t *testing.T) {
	spec := testSpec()
	srv := startServer(t, writeDataset(t, spec), remote.Faults{Seed: 1, DropFrac: 1})
	c := remote.NewClient(remote.ClientOptions{
		Addr:       srv.Addr(),
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
	})
	defer c.Close()

	path := genx.SnapshotFile("", 0, 0)
	_, err := c.FetchFile(path, testVars)
	if err == nil {
		t.Fatal("fetch succeeded with every response dropped mid-payload")
	}
	if !strings.Contains(err.Error(), "attempts failed") {
		t.Fatalf("want retry exhaustion, got: %v", err)
	}
	if rs := c.Stats(); rs.Retries != 2 || rs.Errors != 1 {
		t.Fatalf("client stats = %+v, want 2 retries and 1 error", rs)
	}

	srv.SetFaults(remote.Faults{})
	fp, err := c.FetchFile(path, testVars)
	if err != nil {
		t.Fatalf("fetch after faults cleared: %v", err)
	}
	if len(fp.Blocks) == 0 {
		t.Fatal("recovered fetch returned no blocks")
	}
}

// A server delaying responses past the request deadline must produce a
// deadline failure on every attempt.
func TestDeadlineExceeded(t *testing.T) {
	spec := testSpec()
	srv := startServer(t, writeDataset(t, spec),
		remote.Faults{Seed: 1, DelayFrac: 1, Delay: 300 * time.Millisecond})
	c := remote.NewClient(remote.ClientOptions{
		Addr:           srv.Addr(),
		RequestTimeout: 30 * time.Millisecond,
		MaxRetries:     1,
		RetryBase:      time.Millisecond,
	})
	defer c.Close()

	_, err := c.FetchFile(genx.SnapshotFile("", 0, 0), testVars)
	if err == nil {
		t.Fatal("fetch succeeded against a server delaying past the deadline")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a timeout error, got: %v", err)
	}
	if rs := c.Stats(); rs.Retries != 1 || rs.Errors != 1 {
		t.Fatalf("client stats = %+v, want 1 retry and 1 error", rs)
	}
}

// Concurrent fetches of the same (path, vars) must coalesce into one RPC.
func TestSingleFlightCoalescing(t *testing.T) {
	spec := testSpec()
	srv := startServer(t, writeDataset(t, spec),
		remote.Faults{Seed: 1, DelayFrac: 1, Delay: 100 * time.Millisecond})
	c := remote.NewClient(remote.ClientOptions{Addr: srv.Addr(), PoolSize: 8})
	defer c.Close()

	path := genx.SnapshotFile("", 0, 0)
	const joiners = 7
	errs := make(chan error, joiners+1)
	go func() { // the owner; the injected delay holds its RPC open
		_, err := c.FetchFile(path, testVars)
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	before := srv.Stats().RPCs
	var wg sync.WaitGroup
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.FetchFile(path, testVars)
			errs <- err
		}()
	}
	wg.Wait()
	for i := 0; i < joiners+1; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Stats().RPCs - before; got != 0 {
		t.Fatalf("joiners issued %d extra RPCs, want 0", got)
	}
	if rs := c.Stats(); rs.Coalesced != joiners || rs.RPCs != 1 {
		t.Fatalf("client stats = %+v, want %d coalesced over 1 RPC", rs, joiners)
	}
}

// Two databases with four workers each hammer one server under 10% faults;
// everything must complete with zero failed units. Run with -race.
func TestStressTwoDBs(t *testing.T) {
	spec := testSpec()
	spec.Snapshots = 8
	dir := writeDataset(t, spec)
	srv := startServer(t, dir, remote.Faults{Seed: 99, DropFrac: 0.05, ErrFrac: 0.05})

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := remote.NewClient(remote.ClientOptions{
				Addr:      srv.Addr(),
				PoolSize:  4,
				RetryBase: time.Millisecond,
			})
			defer c.Close()
			db := core.Open(core.Options{MemoryLimit: 256 << 20, BackgroundIO: true, IOWorkers: 4})
			defer db.Close()
			defineTestSchema(t, db)
			read := remote.NewReadFunc(c, snapResolver(spec), testVars, commitTestBlock)
			for s := 0; s < spec.Snapshots; s++ {
				if err := db.AddUnit(fmt.Sprintf("snap_%04d", s), read); err != nil {
					errs <- fmt.Errorf("db%d: %w", id, err)
					return
				}
			}
			for s := 0; s < spec.Snapshots; s++ {
				name := fmt.Sprintf("snap_%04d", s)
				if err := db.WaitUnit(name); err != nil {
					errs <- fmt.Errorf("db%d: %w", id, err)
					return
				}
				if err := db.FinishUnit(name); err != nil {
					errs <- fmt.Errorf("db%d: %w", id, err)
					return
				}
				if err := db.DeleteUnit(name); err != nil {
					errs <- fmt.Errorf("db%d: %w", id, err)
					return
				}
			}
			if st := db.Stats(); st.UnitsFailed != 0 {
				errs <- fmt.Errorf("db%d: %d units failed", id, st.UnitsFailed)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	ss := srv.Stats()
	t.Logf("server: %d conns, %d RPCs, %d faults injected, %.1f MB out",
		ss.Conns, ss.RPCs, ss.FaultsInjected, float64(ss.BytesOut)/1e6)
}

// Requests for paths outside the served directory or non-snapshot files must
// be rejected with a non-retryable protocol error, not retried to exhaustion.
func TestBadRequests(t *testing.T) {
	spec := testSpec()
	srv := startServer(t, writeDataset(t, spec), remote.Faults{})
	c := remote.NewClient(remote.ClientOptions{Addr: srv.Addr(), MaxRetries: 3})
	defer c.Close()

	for _, path := range []string{"../../etc/passwd", "/abs/path.shdf", "notes.txt"} {
		_, err := c.FetchFile(path, testVars)
		var se *remote.ServerError
		if !errors.As(err, &se) || se.Code != remote.CodeBadRequest {
			t.Fatalf("FetchFile(%q) = %v, want CodeBadRequest", path, err)
		}
	}
	if _, err := c.FetchFile("genx_t9999_0.shdf", testVars); err == nil {
		t.Fatal("fetching a missing snapshot succeeded")
	} else {
		var se *remote.ServerError
		if !errors.As(err, &se) || se.Code != remote.CodeNotFound {
			t.Fatalf("missing file: %v, want CodeNotFound", err)
		}
	}
	// None of those should have burned retries: they are permanent errors.
	if rs := c.Stats(); rs.Retries != 0 {
		t.Fatalf("permanent errors consumed %d retries", rs.Retries)
	}
}

// A closed client must fail fast and never panic.
func TestClientClosed(t *testing.T) {
	spec := testSpec()
	srv := startServer(t, writeDataset(t, spec), remote.Faults{})
	c := remote.NewClient(remote.ClientOptions{Addr: srv.Addr()})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchFile(genx.SnapshotFile("", 0, 0), testVars); !errors.Is(err, remote.ErrClientClosed) {
		t.Fatalf("fetch on closed client: %v, want ErrClientClosed", err)
	}
	if err := c.Close(); !errors.Is(err, remote.ErrClientClosed) {
		t.Fatalf("double close: %v, want ErrClientClosed", err)
	}
}
