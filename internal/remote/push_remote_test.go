package remote_test

import (
	"errors"
	"testing"
	"time"

	"godiva/internal/genx"
	"godiva/internal/push"
	"godiva/internal/remote"
)

// startIngestServer serves an initially empty directory with ingest enabled
// and a fast heartbeat, for streaming tests.
func startIngestServer(t *testing.T, faults remote.Faults) *remote.Server {
	t.Helper()
	srv, err := remote.Serve(remote.ServerOptions{
		Dir:       t.TempDir(),
		Ingest:    true,
		Heartbeat: 50 * time.Millisecond,
		Faults:    faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	})
	return srv
}

// filePayload assembles the FilePayload a streaming producer ingests for one
// (step, file) of the dataset.
func filePayload(blocks []*genx.BlockData) *remote.FilePayload {
	return &remote.FilePayload{
		Time:   blocks[0].Time,
		StepID: blocks[0].StepID,
		Blocks: blocks,
	}
}

// drain consumes a subscription's events until want events have arrived, the
// channel closes, or the timeout expires.
func drain(t *testing.T, sub *remote.Subscription, want int, timeout time.Duration) []push.Event {
	t.Helper()
	var got []push.Event
	deadline := time.After(timeout)
	for len(got) < want {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return got
			}
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("timed out with %d/%d events", len(got), want)
		}
	}
	return got
}

// TestStreamingE2E runs the full push path on the wire: one streaming
// producer ingests a small dataset into an empty server while eight
// mixed-policy subscribers listen. Lossless (Block) subscribers must see
// every matched step in order; drop-oldest subscribers must see a monotone
// recent subsequence ending at the final event; the ingested files must then
// serve fetches like generated ones.
func TestStreamingE2E(t *testing.T) {
	srv := startIngestServer(t, remote.Faults{})
	cli := remote.NewClient(remote.ClientOptions{Addr: srv.Addr()})
	defer cli.Close()

	spec := genx.Scaled(32)
	spec.Snapshots = 6
	total := spec.Snapshots * spec.FilesPerSnapshot

	type subCase struct {
		name   string
		spec   push.Spec
		opts   push.Options
		expect int // events a lossless stream must deliver (total matches)
	}
	cases := []subCase{
		{"lossless-all", push.Spec{ToStep: -1}, push.Options{Policy: push.Block}, total},
		{"lossless-file0", push.Spec{ToStep: -1, Files: []int{0}}, push.Options{Policy: push.Block}, spec.Snapshots},
		{"lossless-late", push.Spec{FromStep: 3, ToStep: -1}, push.Options{Policy: push.Block}, (spec.Snapshots - 3) * spec.FilesPerSnapshot},
		{"lossless-stride", push.Spec{ToStep: -1, Stride: 2}, push.Options{Policy: push.Block}, (spec.Snapshots + 1) / 2 * spec.FilesPerSnapshot},
		{"drop-all", push.Spec{ToStep: -1}, push.Options{Policy: push.DropOldest, Queue: 2}, 0},
		{"drop-wide", push.Spec{ToStep: -1}, push.Options{Policy: push.DropOldest}, 0},
		{"drop-file1", push.Spec{ToStep: -1, Files: []int{1}}, push.Options{Policy: push.DropOldest, Queue: 4}, 0},
		{"drop-stride", push.Spec{ToStep: -1, Stride: 3}, push.Options{Policy: push.DropOldest, Queue: 2}, 0},
	}
	subs := make([]*remote.Subscription, len(cases))
	for i, c := range cases {
		sub, err := cli.Subscribe(c.spec, c.opts)
		if err != nil {
			t.Fatalf("subscribe %s: %v", c.name, err)
		}
		defer sub.Close()
		subs[i] = sub
	}

	var lastPath string
	err := genx.StreamDataset(spec, func(step, file int, blocks []*genx.BlockData) error {
		lastPath = genx.SnapshotFile("", step, file)
		return cli.Ingest(lastPath, filePayload(blocks))
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}

	for i, c := range cases {
		sub := subs[i]
		if c.opts.Policy == push.Block {
			got := drain(t, sub, c.expect, 10*time.Second)
			prev := -1
			for _, ev := range got {
				if !c.spec.Matches(ev) {
					t.Errorf("%s: event (step %d, file %d) does not match %+v", c.name, ev.Step, ev.File, c.spec)
				}
				if int(ev.Seq) <= prev {
					t.Errorf("%s: out-of-order seq %d after %d", c.name, ev.Seq, prev)
				}
				prev = int(ev.Seq)
			}
			continue
		}
		// Drop-oldest streams deliver a suffix of what they matched: every
		// event in order, ending at the newest matched event. Wait for that
		// final event, then check monotonicity.
		final := spec.Snapshots - 1
		if c.spec.Stride > 1 {
			final = (final / c.spec.Stride) * c.spec.Stride
		}
		var got []push.Event
		deadline := time.After(10 * time.Second)
		for len(got) == 0 || got[len(got)-1].Step != final ||
			got[len(got)-1].File != spec.FilesPerSnapshot-1 && len(c.spec.Files) == 0 {
			select {
			case ev, ok := <-sub.Events():
				if !ok {
					t.Fatalf("%s: stream ended early: %v", c.name, sub.Err())
				}
				got = append(got, ev)
			case <-deadline:
				t.Fatalf("%s: timed out waiting for the final event (have %d)", c.name, len(got))
			}
		}
		prev := uint64(0)
		for _, ev := range got {
			if !c.spec.Matches(ev) {
				t.Errorf("%s: event (step %d, file %d) does not match %+v", c.name, ev.Step, ev.File, c.spec)
			}
			if ev.Seq <= prev {
				t.Errorf("%s: out-of-order seq %d after %d", c.name, ev.Seq, prev)
			}
			prev = ev.Seq
		}
	}

	// The ingested dataset now serves the pull path: the spec grew to cover
	// it and the last landed file fetches cleanly.
	if got := srv.Spec(); got.Snapshots != spec.Snapshots ||
		got.FilesPerSnapshot != spec.FilesPerSnapshot || got.Blocks != spec.Blocks {
		t.Errorf("served spec %+v, want counts from %+v", got, spec)
	}
	fp, err := cli.FetchFile(lastPath, testVars)
	if err != nil {
		t.Fatalf("fetch after ingest: %v", err)
	}
	if len(fp.Blocks) == 0 {
		t.Error("fetched ingested file has no blocks")
	}
	fp.Recycle()

	st := srv.Stats()
	if st.Ingests != int64(total) {
		t.Errorf("Ingests = %d, want %d", st.Ingests, total)
	}
	ps := srv.PushStats()
	if ps.Published != int64(total) {
		t.Errorf("Published = %d, want %d", ps.Published, total)
	}
}

// TestServerCloseSeversSubscriptions checks shutdown ordering: closing the
// server while a subscription is live must unblock its fan-out writer and
// end the client's stream with a typed error.
func TestServerCloseSeversSubscriptions(t *testing.T) {
	srv := startIngestServer(t, remote.Faults{})
	cli := remote.NewClient(remote.ClientOptions{Addr: srv.Addr()})
	defer cli.Close()

	sub, err := cli.Subscribe(push.Spec{ToStep: -1}, push.Options{Policy: push.Block})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Prove the stream is live, then pull the server out from under it.
	spec := genx.Scaled(32)
	spec.Snapshots = 1
	err = genx.StreamDataset(spec, func(step, file int, blocks []*genx.BlockData) error {
		return cli.Ingest(genx.SnapshotFile("", step, file), filePayload(blocks))
	})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, sub, spec.FilesPerSnapshot, 5*time.Second)

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Errorf("server close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server Close hung behind an active subscription")
	}

	select {
	case _, ok := <-sub.Events():
		if ok {
			t.Error("event after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event channel did not close after server shutdown")
	}
	if err := sub.Err(); !errors.Is(err, remote.ErrSubscriptionLost) {
		t.Errorf("Err() = %v, want ErrSubscriptionLost", err)
	}
}

// TestClientCloseSeversSubscriptions checks the other direction: Client.Close
// ends every subscription it owns, and the typed error reports a deliberate
// local close rather than a lost stream.
func TestClientCloseSeversSubscriptions(t *testing.T) {
	srv := startIngestServer(t, remote.Faults{})
	cli := remote.NewClient(remote.ClientOptions{Addr: srv.Addr()})

	sub, err := cli.Subscribe(push.Spec{ToStep: -1}, push.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.Events():
		if ok {
			t.Error("event after client close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event channel did not close after client shutdown")
	}
	if err := sub.Err(); !errors.Is(err, remote.ErrSubscriptionClosed) {
		t.Errorf("Err() = %v, want ErrSubscriptionClosed", err)
	}
	if _, err := cli.Subscribe(push.Spec{}, push.Options{}); !errors.Is(err, remote.ErrClientClosed) {
		t.Errorf("Subscribe after close = %v, want ErrClientClosed", err)
	}
}

// TestStalledSubscriberDropsNotBlocks injects StallFrac faults so every
// event write to one drop-oldest subscriber sleeps, and checks the
// contract for visual streams: the producer is never stalled (ingests stay
// fast), overflow is shed as counted drops, and a concurrent lossless
// subscriber still receives every event in order.
func TestStalledSubscriberDropsNotBlocks(t *testing.T) {
	srv := startIngestServer(t, remote.Faults{
		Seed:      7,
		StallFrac: 1.0,
		Delay:     30 * time.Millisecond,
	})
	cli := remote.NewClient(remote.ClientOptions{Addr: srv.Addr()})
	defer cli.Close()

	slow, err := cli.Subscribe(push.Spec{ToStep: -1}, push.Options{Policy: push.DropOldest, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	lossless, err := cli.Subscribe(push.Spec{ToStep: -1}, push.Options{Policy: push.Block, Queue: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer lossless.Close()

	spec := genx.Scaled(32)
	spec.Snapshots = 8
	total := spec.Snapshots * spec.FilesPerSnapshot

	start := time.Now()
	err = genx.StreamDataset(spec, func(step, file int, blocks []*genx.BlockData) error {
		return cli.Ingest(genx.SnapshotFile("", step, file), filePayload(blocks))
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// With every delivery to the slow stream stalled 30ms, a producer that
	// waited on it would need total*30ms (plus I/O); drop-oldest must keep
	// ingest far under that. The lossless writer is also stalled per write,
	// but its queue (64) absorbs the whole burst without backpressure.
	if budget := time.Duration(total) * 30 * time.Millisecond; elapsed >= budget {
		t.Errorf("producer took %v, stalled-subscriber budget %v — backpressure leaked", elapsed, budget)
	}

	got := drain(t, lossless, total, 30*time.Second)
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Errorf("lossless: out-of-order seq %d after %d", got[i].Seq, got[i-1].Seq)
		}
	}

	// The slow stream sheds load: wait for its final event, then check the
	// registry counted the overflow.
	deadline := time.After(30 * time.Second)
	var last push.Event
	for last.Step != spec.Snapshots-1 || last.File != spec.FilesPerSnapshot-1 {
		select {
		case ev, ok := <-slow.Events():
			if !ok {
				t.Fatalf("slow stream ended early: %v", slow.Err())
			}
			if ev.Seq <= last.Seq {
				t.Errorf("slow: out-of-order seq %d after %d", ev.Seq, last.Seq)
			}
			last = ev
		case <-deadline:
			t.Fatalf("timed out waiting for the slow stream's final event (at step %d file %d)", last.Step, last.File)
		}
	}
	if ps := srv.PushStats(); ps.Dropped == 0 {
		t.Errorf("PushStats = %+v, want nonzero Dropped for the stalled stream", ps)
	}
	if st := srv.Stats(); st.FaultsInjected == 0 {
		t.Errorf("Stats = %+v, want injected stall faults", st)
	}
}
