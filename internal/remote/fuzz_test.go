package remote

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"godiva/internal/genx"
	"godiva/internal/push"
)

// FuzzFilePayload feeds arbitrary bodies through the FilePayload decoder —
// the bytes a client accepts from the network — and round-trips whatever
// decodes: decode → encode segments → flatten → decode must reproduce the
// same payload, and nothing may panic. The corpus seeds a valid encoding
// plus truncations and count mutations (see TestWriteFuzzCorpus, which
// mirrors the shdf FuzzReader corpus setup).
func FuzzFilePayload(f *testing.F) {
	for _, s := range payloadSeedInputs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		fp, _, err := decodeFilePayload(b)
		if err != nil {
			return // rejected: the desired outcome for damaged frames
		}
		segs, _, err := encodeFilePayloadSegments(fp, maxFrame-2)
		if err != nil {
			t.Fatalf("re-encoding a decoded payload failed: %v", err)
		}
		again, _, err := decodeFilePayload(flattenSegments(segs))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded payload failed: %v", err)
		}
		if len(again.Blocks) != len(fp.Blocks) {
			t.Fatalf("round trip changed block count: %d != %d", len(again.Blocks), len(fp.Blocks))
		}
		samePayload(t, again, fp)
	})
}

// FuzzBatchFrame feeds arbitrary bodies through the OpFetchBatch response
// decoder — the multi-file frames a client accepts from a v2.1 server — and
// round-trips whatever decodes: every ok item re-encodes through the same
// segment encoder the server uses (cached segments included), every error
// item must keep its code and message, and nothing may panic.
func FuzzBatchFrame(f *testing.F) {
	for _, s := range batchSeedInputs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		results, _, err := decodeBatchItems(b)
		if err != nil {
			return // rejected: the desired outcome for damaged frames
		}
		var out segEnc
		out.e.u32(uint32(len(results)))
		for _, r := range results {
			if r.err != nil {
				out.appendBatchItem(nil, 0, r.err)
				continue
			}
			segs, _, err := encodeFilePayloadSegments(r.fp, maxFrame-2)
			if err != nil {
				t.Fatalf("re-encoding a decoded batch item failed: %v", err)
			}
			size := 0
			for _, s := range segs {
				size += len(s)
			}
			out.appendBatchItem(segs, size, nil)
		}
		out.flush()
		again, _, err := decodeBatchItems(flattenSegments(out.segs))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded batch frame failed: %v", err)
		}
		if len(again) != len(results) {
			t.Fatalf("round trip changed item count: %d != %d", len(again), len(results))
		}
		for i := range results {
			if results[i].err != nil {
				if again[i].err == nil || again[i].err.Code != results[i].err.Code ||
					again[i].err.Msg != results[i].err.Msg {
					t.Fatalf("round trip changed error item %d: %+v != %+v",
						i, again[i].err, results[i].err)
				}
				continue
			}
			if again[i].fp == nil {
				t.Fatalf("round trip lost ok item %d", i)
			}
			samePayload(t, again[i].fp, results[i].fp)
		}
	})
}

// FuzzSpec does the same for the OpSpec payload.
func FuzzSpec(f *testing.F) {
	for _, s := range specSeedInputs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := decodeSpec(b)
		if err != nil {
			return
		}
		again, err := decodeSpec(encodeSpec(s))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded spec failed: %v", err)
		}
		// Compare DT bit for bit: fuzzed frames decode to NaN, where ==
		// would report a spurious mismatch.
		if again.Snapshots != s.Snapshots || again.FilesPerSnapshot != s.FilesPerSnapshot ||
			again.Blocks != s.Blocks || math.Float64bits(again.DT) != math.Float64bits(s.DT) {
			t.Fatalf("round trip changed spec: %+v != %+v", again, s)
		}
	})
}

// FuzzSubSpec feeds arbitrary bodies through the OpSubscribe request
// decoder — the bytes a server accepts before granting a long-lived stream —
// and round-trips whatever decodes.
func FuzzSubSpec(f *testing.F) {
	for _, s := range subSpecSeedInputs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		spec, opts, err := decodeSubReq(b)
		if err != nil {
			return // rejected: the desired outcome for damaged frames
		}
		again, aopts, err := decodeSubReq(encodeSubReq(spec, opts))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded subscribe request failed: %v", err)
		}
		if again.FromStep != spec.FromStep || again.ToStep != spec.ToStep ||
			again.Stride != spec.Stride || aopts.Policy != opts.Policy ||
			aopts.Queue != opts.Queue ||
			len(again.Fields) != len(spec.Fields) || len(again.Files) != len(spec.Files) {
			t.Fatalf("round trip changed request: %+v/%+v != %+v/%+v", again, aopts, spec, opts)
		}
		for i := range spec.Fields {
			if again.Fields[i] != spec.Fields[i] {
				t.Fatalf("round trip changed field %d: %q != %q", i, again.Fields[i], spec.Fields[i])
			}
		}
		for i := range spec.Files {
			if again.Files[i] != spec.Files[i] {
				t.Fatalf("round trip changed file %d: %d != %d", i, again.Files[i], spec.Files[i])
			}
		}
	})
}

// FuzzEventFrame does the same for OpEvent frames — the bytes a subscriber
// accepts from the network for the lifetime of its stream.
func FuzzEventFrame(f *testing.F) {
	for _, s := range eventSeedInputs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		ev, err := decodeEvent(b)
		if err != nil {
			return
		}
		again, err := decodeEvent(encodeEvent(ev))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded event failed: %v", err)
		}
		// Compare Time bit for bit: fuzzed frames may decode to NaN.
		if again.Seq != ev.Seq || again.Step != ev.Step || again.File != ev.File ||
			math.Float64bits(again.Time) != math.Float64bits(ev.Time) ||
			again.Path != ev.Path || again.StepID != ev.StepID ||
			len(again.Fields) != len(ev.Fields) {
			t.Fatalf("round trip changed event: %+v != %+v", again, ev)
		}
		for i := range ev.Fields {
			if again.Fields[i] != ev.Fields[i] {
				t.Fatalf("round trip changed field %d: %q != %q", i, again.Fields[i], ev.Fields[i])
			}
		}
	})
}

// payloadSeedInputs is the checked-in seed corpus for FuzzFilePayload: a
// valid encoding, its interesting truncations, and a block-count mutation.
func payloadSeedInputs() [][]byte {
	segs, _, err := encodeFilePayloadSegments(samplePayload(), maxFrame-2)
	if err != nil {
		panic(err)
	}
	data := flattenSegments(segs)
	seeds := [][]byte{data}
	for _, n := range []int{0, 8, 12, len(data) / 2, len(data) - 1} {
		if n <= len(data) {
			seeds = append(seeds, append([]byte(nil), data[:n]...))
		}
	}
	// Wild block count: f64 time (8) + str stepID (2 + len) puts the u32
	// count right after the step-ID string.
	if at := 8 + 2 + len("0.000025"); at+4 <= len(data) {
		mut := append([]byte(nil), data...)
		mut[at], mut[at+1], mut[at+2], mut[at+3] = 0xFF, 0xFF, 0xFF, 0xFF
		seeds = append(seeds, mut)
	}
	return seeds
}

// batchSeedInputs seeds FuzzBatchFrame: a valid 3-item frame (two payloads
// around an error item, exactly what a partly-failing batch answers), its
// interesting truncations, and an item-count mutation.
func batchSeedInputs() [][]byte {
	segs, _, err := encodeFilePayloadSegments(samplePayload(), maxFrame-2)
	if err != nil {
		panic(err)
	}
	size := 0
	for _, s := range segs {
		size += len(s)
	}
	var out segEnc
	out.e.u32(3)
	out.appendBatchItem(segs, size, nil)
	out.appendBatchItem(nil, 0, &ServerError{Code: CodeNotFound, Msg: "no such snapshot"})
	out.appendBatchItem(segs, size, nil)
	out.flush()
	data := flattenSegments(out.segs)
	seeds := [][]byte{data}
	for _, n := range []int{0, 4, 5, 16, len(data) / 2, len(data) - 1} {
		if n <= len(data) {
			seeds = append(seeds, append([]byte(nil), data[:n]...))
		}
	}
	// Wild item count: the u32 count is the frame's first field.
	mut := append([]byte(nil), data...)
	mut[0], mut[1], mut[2], mut[3] = 0xFF, 0xFF, 0xFF, 0xFF
	seeds = append(seeds, mut)
	return seeds
}

// specSeedInputs seeds FuzzSpec with a valid encoding and truncations.
func specSeedInputs() [][]byte {
	data := encodeSpec(genx.Spec{Snapshots: 32, FilesPerSnapshot: 8, Blocks: 120, DT: 2.5e-5})
	return [][]byte{data, data[:4], data[:0], append([]byte(nil), data[:len(data)-1]...)}
}

// subSpecSeedInputs seeds FuzzSubSpec with valid encodings (both policies, a
// filtered rule), truncations, and a field-count mutation.
func subSpecSeedInputs() [][]byte {
	full := encodeSubReq(
		push.Spec{FromStep: 2, ToStep: 30, Stride: 2, Fields: []string{"velocity", "stress_avg"}, Files: []int{0, 3}},
		push.Options{Queue: 16, Policy: push.Block},
	)
	open := encodeSubReq(push.Spec{ToStep: -1}, push.Options{Policy: push.DropOldest})
	seeds := [][]byte{full, open}
	for _, n := range []int{0, 4, 13, len(full) / 2, len(full) - 1} {
		if n <= len(full) {
			seeds = append(seeds, append([]byte(nil), full[:n]...))
		}
	}
	// Wild field count: 3×i32 + u8 policy + i32 queue put the u16 count at 17.
	if len(full) > 19 {
		mut := append([]byte(nil), full...)
		mut[17], mut[18] = 0xFF, 0xFF
		seeds = append(seeds, mut)
	}
	return seeds
}

// eventSeedInputs seeds FuzzEventFrame with a valid encoding, truncations,
// and a field-count mutation.
func eventSeedInputs() [][]byte {
	data := encodeEvent(push.Event{
		Seq: 7, Step: 3, File: 1, Time: 1e-4,
		Path: "genx_t0003_1.shdf", StepID: "0.000100",
		Fields: []string{"velocity", "stress_avg"},
	})
	seeds := [][]byte{data}
	for _, n := range []int{0, 8, 24, len(data) / 2, len(data) - 1} {
		if n <= len(data) {
			seeds = append(seeds, append([]byte(nil), data[:n]...))
		}
	}
	// Wild field count: it sits right after the two length-prefixed strings.
	if at := 24 + 2 + len("genx_t0003_1.shdf") + 2 + len("0.000100"); at+2 <= len(data) {
		mut := append([]byte(nil), data...)
		mut[at], mut[at+1] = 0xFF, 0xFF
		seeds = append(seeds, mut)
	}
	return seeds
}

// TestWriteFuzzCorpus regenerates the on-disk seed corpora. It is a no-op
// unless REMOTE_WRITE_CORPUS=1, so normal test runs never touch the tree:
//
//	REMOTE_WRITE_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/remote
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("REMOTE_WRITE_CORPUS") == "" {
		t.Skip("set REMOTE_WRITE_CORPUS=1 to regenerate testdata/fuzz")
	}
	for fuzz, seeds := range map[string][][]byte{
		"FuzzFilePayload": payloadSeedInputs(),
		"FuzzBatchFrame":  batchSeedInputs(),
		"FuzzSpec":        specSeedInputs(),
		"FuzzSubSpec":     subSpecSeedInputs(),
		"FuzzEventFrame":  eventSeedInputs(),
	} {
		dir := filepath.Join("testdata", "fuzz", fuzz)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
