package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"godiva/internal/genx"
	"godiva/internal/push"
	"godiva/internal/shdf"
)

// ServerOptions configures a unit server (cmd/godivad).
type ServerOptions struct {
	// Addr is the TCP listen address. Empty means "127.0.0.1:0" (an
	// ephemeral loopback port, reported by Server.Addr).
	Addr string
	// Dir is the snapshot directory served; it must hold a dataset readable
	// by genx.Discover. Request paths are resolved inside it and may not
	// escape it.
	Dir string
	// ReaderCache caps the LRU of open snapshot readers (default 8). Open
	// readers hold their SHDF directory and block table in memory, so a
	// cached file answers fetches without re-reading either.
	ReaderCache int
	// PayloadCache budgets the pinned payload cache in bytes: encoded
	// response segments kept per (path, vars) and scatter-sent verbatim to
	// every later fetcher of the same hot file. 0 means the 64 MiB
	// default; negative disables the cache.
	PayloadCache int64
	// DisableBatch makes the server answer OpFetchBatch like a pre-batch
	// (v2.0) server would — CodeBadRequest, unknown op — so client
	// fallback paths are testable end to end.
	DisableBatch bool
	// IdleTimeout disconnects clients idle longer than this (default 5m).
	IdleTimeout time.Duration
	// Ingest accepts OpIngest requests: producers may push new snapshot
	// files into Dir, and the server starts even when Dir is empty or
	// missing (it is created). Off by default — a fetch-only server never
	// writes its dataset.
	Ingest bool
	// Heartbeat is the idle interval between keep-alive frames on
	// subscription connections (default IdleTimeout/2, capped at 2s).
	Heartbeat time.Duration
	// Faults configures deterministic fault injection (testing; zero = off).
	Faults Faults
	// Logf, when non-nil, receives one line per connection event and error.
	Logf func(format string, args ...any)
}

// Faults injects failures into a configurable fraction of OpFetch responses
// so client retry behavior is testable deterministically: decisions come
// from a private rand.Rand seeded with Seed. Fractions are cumulative —
// DropFrac 0.05 + ErrFrac 0.05 faults 10% of responses.
type Faults struct {
	Seed      int64         // RNG seed (0 means 1, for determinism)
	DropFrac  float64       // sever the connection mid-payload
	ErrFrac   float64       // answer CodeUnavailable (client retries)
	DelayFrac float64       // delay the response by Delay
	StallFrac float64       // stall an OpEvent delivery by Delay (slow subscriber)
	Delay     time.Duration // delay used by DelayFrac and StallFrac
}

func (f Faults) enabled() bool { return f.DropFrac > 0 || f.ErrFrac > 0 || f.DelayFrac > 0 }

// Fault actions drawn per OpFetch response.
const (
	faultNone = iota
	faultDrop
	faultErr
	faultDelay
)

// ServerStats is a snapshot of the server's operation counters, the
// server-side half of the subsystem's observability (RemoteStats is the
// client half).
type ServerStats struct {
	Conns          int64 // connections accepted
	RPCs           int64 // requests handled (all ops)
	Errors         int64 // error responses sent (excluding injected faults)
	FaultsInjected int64 // responses dropped, delayed or failed by Faults
	BytesOut       int64 // response frame bytes written
	BytesCopied    int64 // payload array bytes copied into response frames
	//                      (scatter-send borrows the rest straight from the
	//                      dataset; nonzero only on big-endian hosts)
	ReaderHits   int64 // fetches served by a cached open reader
	ReaderOpens  int64 // snapshot files opened
	ReaderEvicts int64 // cached readers closed by LRU pressure

	BatchRPCs             int64 // OpFetchBatch requests answered
	PayloadCacheHits      int64 // fetches served from cached encoded segments
	PayloadCacheMisses    int64 // fetches that had to encode their response
	PayloadCacheEvictions int64 // cached payloads dropped (pressure or ingest)
	BytesServedFromCache  int64 // payload bytes scatter-sent from the cache

	Ingests       int64 // snapshot files accepted via OpIngest
	Subscriptions int64 // OpSubscribe streams accepted
	EventsOut     int64 // OpEvent frames written (heartbeats excluded)
}

// Server serves unit payloads out of a directory of SHDF snapshot files.
// Start one with Serve; stop it with Close.
type Server struct {
	opts     ServerOptions
	ln       net.Listener
	cache    *readerCache
	payloads *payloadCache // nil when disabled
	reg      *push.Registry

	mu     sync.Mutex
	spec   genx.Spec // grows as OpIngest lands new steps
	conns  map[net.Conn]struct{}
	faults Faults
	rng    *rand.Rand
	stats  ServerStats
	closed bool

	wg sync.WaitGroup
}

// Serve discovers the dataset in opts.Dir, starts listening, and serves
// until Close.
func Serve(opts ServerOptions) (*Server, error) {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.ReaderCache <= 0 {
		opts.ReaderCache = 8
	}
	if opts.IdleTimeout <= 0 {
		opts.IdleTimeout = 5 * time.Minute
	}
	if opts.PayloadCache == 0 {
		opts.PayloadCache = 64 << 20
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = opts.IdleTimeout / 2
		if opts.Heartbeat > 2*time.Second {
			opts.Heartbeat = 2 * time.Second
		}
	}
	if opts.Ingest {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("remote: serve %s: %w", opts.Dir, err)
		}
	}
	spec, err := genx.Discover(opts.Dir)
	if err != nil {
		// An ingest server may start on an empty directory: producers fill
		// it, and the spec grows as snapshots land.
		if !opts.Ingest {
			return nil, fmt.Errorf("remote: serve %s: %w", opts.Dir, err)
		}
		spec = genx.Spec{}
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("remote: listen: %w", err)
	}
	s := &Server{
		opts:     opts,
		spec:     spec,
		ln:       ln,
		cache:    newReaderCache(opts.ReaderCache),
		payloads: newPayloadCache(opts.PayloadCache),
		reg:      push.NewRegistry(),
		conns:    make(map[net.Conn]struct{}),
	}
	s.mu.Lock()
	s.setFaultsLocked(opts.Faults)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Spec returns the served dataset's shape. Ingest grows it at run time.
func (s *Server) Spec() genx.Spec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spec
}

// PushStats returns a snapshot of the push registry's fan-out counters.
func (s *Server) PushStats() push.Stats { return s.reg.Stats() }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ReaderHits, st.ReaderOpens, st.ReaderEvicts = s.cache.counters()
	st.PayloadCacheHits, st.PayloadCacheMisses, st.PayloadCacheEvictions,
		st.BytesServedFromCache = s.payloads.counters()
	return st
}

// SetFaults replaces the fault-injection plan at run time (tests use this to
// switch failure modes against one server).
func (s *Server) SetFaults(f Faults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setFaultsLocked(f)
}

func (s *Server) setFaultsLocked(f Faults) {
	s.faults = f
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	s.rng = rand.New(rand.NewSource(seed))
}

// Close stops accepting, severs open connections, joins the handler
// goroutines and closes every cached reader. Closing the push registry
// first wakes every fan-out writer blocked on an empty queue (and every
// ingest blocked on a full lossless queue); closing the connections then
// unblocks writers stuck mid-send to a stalled peer, so wg.Wait cannot
// hang behind a subscription.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.reg.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	// Payload-cache entries pin reader-cache entries, so tear them down
	// first: their reader releases must run before the readers close.
	s.payloads.closeAll()
	s.cache.closeAll()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			s.logf("remote: accept: %v", err)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.stats.Conns++
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		op, body, err := readFrame(conn)
		if err != nil {
			return // client went away, idled out, or sent garbage
		}
		if op == OpSubscribe {
			// The connection changes direction: this goroutine becomes the
			// subscription's fan-out writer until the stream ends.
			s.handleSubscribe(conn, body)
			return
		}
		rop, segs, done := s.handleRequest(op, body)
		// done pins server-side resources the response segments borrow
		// (the cached snapshot reader, whose mmap'd payloads the segments
		// may alias); it must run after the frame has left — and on every
		// early return — before the reader becomes evictable again.
		release := func() {
			if done != nil {
				done()
				done = nil
			}
		}

		// Fault injection on the data path only, so health checks and spec
		// discovery stay reliable.
		if op == OpFetch || op == OpFetchBatch {
			switch action, delay := s.faultAction(); action {
			case faultDrop:
				// Sever mid-payload: the header promises the full response,
				// but only a prefix of the body follows before the hang-up —
				// the client sees an unexpected EOF partway through.
				rbody := flattenSegments(segs)
				release()
				cut := len(rbody) / 2
				if cut > 4096 {
					cut = 4096
				}
				hdr := make([]byte, 6)
				binary.LittleEndian.PutUint32(hdr, uint32(2+len(rbody)))
				hdr[4] = protoVersion
				hdr[5] = rop
				conn.Write(append(hdr, rbody[:cut]...))
				return
			case faultErr:
				release()
				rop, segs = RespErr, [][]byte{encodeErr(CodeUnavailable, "injected fault")}
			case faultDelay:
				time.Sleep(delay)
			}
		}

		blen := 0
		for _, seg := range segs {
			blen += len(seg)
		}
		conn.SetWriteDeadline(time.Now().Add(s.opts.IdleTimeout))
		err = writeFrameBuffers(conn, rop, segs)
		release()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.stats.BytesOut += int64(6 + blen)
		s.mu.Unlock()
	}
}

// faultAction draws one fault decision for a response.
func (s *Server) faultAction() (int, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.faults
	if !f.enabled() {
		return faultNone, 0
	}
	r := s.rng.Float64()
	action := faultNone
	switch {
	case r < f.DropFrac:
		action = faultDrop
	case r < f.DropFrac+f.ErrFrac:
		action = faultErr
	case r < f.DropFrac+f.ErrFrac+f.DelayFrac:
		action = faultDelay
	}
	if action != faultNone {
		s.stats.FaultsInjected++
	}
	return action, f.Delay
}

// handleRequest dispatches one request and returns the response frame as
// scattered segments, plus a non-nil done when the segments borrow pinned
// server state (the caller runs it once the frame is written). A panic
// anywhere in the read path (e.g. a decoder bug on a damaged snapshot) is
// converted into a clean CodeInternal response rather than killing the
// connection handler.
func (s *Server) handleRequest(op byte, body []byte) (rop byte, segs [][]byte, done func()) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("remote: panic serving op %#02x: %v", op, r)
			rop, segs, done = RespErr, [][]byte{encodeErr(CodeInternal, fmt.Sprintf("panic: %v", r))}, nil
		}
	}()
	countErr := func(code uint16, msg string) (byte, [][]byte, func()) {
		s.mu.Lock()
		s.stats.Errors++
		s.mu.Unlock()
		return RespErr, [][]byte{encodeErr(code, msg)}, nil
	}
	s.mu.Lock()
	s.stats.RPCs++
	s.mu.Unlock()
	switch op {
	case OpPing:
		return RespOK, nil, nil
	case OpSpec:
		return RespOK, [][]byte{encodeSpec(s.Spec())}, nil
	case OpIngest:
		if !s.opts.Ingest {
			return countErr(CodeBadRequest, "ingest is disabled on this server")
		}
		path, fp, _, err := decodeIngestReq(body)
		if err != nil {
			return countErr(CodeBadRequest, err.Error())
		}
		if err := s.ingest(path, fp); err != nil {
			s.logf("remote: ingest %s: %v", path, err)
			return countErr(errCode(err), err.Error())
		}
		return RespOK, nil, nil
	case OpFetch:
		path, vars, err := decodeFetchReq(body)
		if err != nil {
			return countErr(CodeBadRequest, err.Error())
		}
		segs, _, copied, release, err := s.serveFile(path, vars)
		if err != nil {
			s.logf("remote: fetch %s: %v", path, err)
			return countErr(errCode(err), err.Error())
		}
		s.mu.Lock()
		s.stats.BytesCopied += copied
		s.mu.Unlock()
		return RespOK, segs, release
	case OpFetchBatch:
		if s.opts.DisableBatch {
			// Answer exactly like a pre-batch server: unknown op. Clients
			// key their fallback on this.
			return countErr(CodeBadRequest, fmt.Sprintf("unknown op %#02x", op))
		}
		reqs, err := decodeBatchReq(body)
		if err != nil || len(reqs) == 0 {
			if err == nil {
				err = fmt.Errorf("%w: empty batch", ErrProtocol)
			}
			return countErr(CodeBadRequest, err.Error())
		}
		return s.serveBatch(reqs)
	default:
		return countErr(CodeBadRequest, fmt.Sprintf("unknown op %#02x", op))
	}
}

// errCode maps a fetch error onto a protocol error code.
func errCode(err error) uint16 {
	var se *ServerError
	switch {
	case errors.As(err, &se):
		return se.Code
	case errors.Is(err, ErrFrameTooLarge):
		return CodeInternal
	case os.IsNotExist(err):
		return CodeNotFound
	case errors.Is(err, shdf.ErrNotSHDF),
		errors.Is(err, shdf.ErrCorrupt),
		errors.Is(err, shdf.ErrChecksum),
		errors.Is(err, shdf.ErrNoObject),
		errors.Is(err, shdf.ErrBadType):
		return CodeCorrupt
	default:
		return CodeInternal
	}
}

// serveFile returns one (path, vars) fetch's encoded response body as
// scattered segments, served verbatim from the payload cache when the same
// request was encoded before. On a miss the response is encoded from a
// pinned reader and offered to the cache, which takes over the reader's
// release; either way the returned done func (pair with the written frame)
// keeps the segments' backing memory — a cache entry or the reader's mmap —
// alive until it runs. size is the total payload length; copied counts
// array bytes that could not be borrowed (0 on a hit: cached segments go
// to the socket as-is).
func (s *Server) serveFile(path string, vars []string) (segs [][]byte, size int, copied int64, done func(), err error) {
	key := fetchKey(path, vars)
	var gen uint64
	if s.payloads != nil {
		if e := s.payloads.acquire(key); e != nil {
			return e.segs, int(e.size), 0, func() { s.payloads.release(e) }, nil
		}
		// Captured before the read: an ingest landing between here and
		// insert bumps it, and insert then refuses the stale segments.
		gen = s.payloads.gen(path)
	}
	fp, release, err := s.fetch(path, vars)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	segs, copied, err = encodeFilePayloadSegments(fp, maxFrame-2)
	if err != nil {
		release()
		return nil, 0, 0, nil, err
	}
	for _, seg := range segs {
		size += len(seg)
	}
	if s.payloads != nil {
		if e := s.payloads.insert(key, path, gen, segs, int64(size), release); e != nil {
			return segs, size, copied, func() { s.payloads.release(e) }, nil
		}
	}
	return segs, size, copied, release, nil
}

// serveBatch answers one OpFetchBatch request: every item is fetched
// through serveFile (so hot files hit the payload cache) and appended to a
// single multi-file response frame. Items fail independently — a missing
// file yields an error item, not an error frame — and an item that would
// overflow the frame cap is answered CodeUnavailable so the client fetches
// it on its own.
func (s *Server) serveBatch(reqs []fetchReq) (byte, [][]byte, func()) {
	var out segEnc
	out.e.u32(uint32(len(reqs)))
	var releases []func()
	var copied int64
	for _, r := range reqs {
		segs, size, cp, done, err := s.serveFile(r.path, r.vars)
		if err != nil {
			s.countError()
			s.logf("remote: fetch %s: %v", r.path, err)
			out.appendBatchItem(nil, 0, &ServerError{Code: errCode(err), Msg: err.Error()})
			continue
		}
		// Worst-case item preamble: status byte, pad to 4, u32 length,
		// pad to 8 — 15 bytes.
		if out.base+len(out.e.b)+15+size > maxFrame-2 {
			done()
			out.appendBatchItem(nil, 0, &ServerError{Code: CodeUnavailable, Msg: "batch frame full"})
			continue
		}
		copied += cp
		out.appendBatchItem(segs, size, nil)
		releases = append(releases, done)
	}
	out.flush()
	s.mu.Lock()
	s.stats.BatchRPCs++
	s.stats.BytesCopied += copied
	s.mu.Unlock()
	return RespOK, out.segs, func() {
		for _, f := range releases {
			f()
		}
	}
}

// fetch reads one snapshot file's blocks through the reader cache. On
// success the returned done func releases the cache entry: the payload's
// arrays may alias the open reader's mmap'd payloads, so the entry stays
// pinned (unevictable, its mapping intact) until the caller has finished
// with the payload — for OpFetch, until the response frame has been
// written to the socket.
func (s *Server) fetch(path string, vars []string) (fp *FilePayload, done func(), err error) {
	if path == "" || !filepath.IsLocal(path) || !strings.HasSuffix(path, ".shdf") {
		return nil, nil, &ServerError{Code: CodeBadRequest, Msg: fmt.Sprintf("bad path %q", path)}
	}
	ent, err := s.cache.acquire(filepath.Join(s.opts.Dir, path))
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if done == nil {
			s.cache.release(ent)
		}
	}()
	// The genx file handle tracks a read position (for platform-cost
	// modeling), so reads through one handle are serialized; concurrency
	// comes from the cache holding many files open.
	ent.mu.Lock()
	defer ent.mu.Unlock()
	fp = &FilePayload{Path: path, Time: ent.h.Time, StepID: ent.h.StepID}
	for _, e := range ent.h.Blocks() {
		// lint:ignore deadlockcheck reading under ent.mu is the documented
		// per-handle serialization (the handle tracks a read position);
		// ent.mu is ordered after readerCache.mu and before the platform
		// leaves, never the reverse.
		bd, err := ent.h.ReadBlock(e, vars)
		if err != nil {
			return nil, nil, err
		}
		fp.Blocks = append(fp.Blocks, bd)
	}
	return fp, func() { s.cache.release(ent) }, nil
}

// ingest validates and lands one pushed snapshot file, then publishes the
// arrival to the subscription registry. The payload goes through the same
// shdf writer path WriteDataset uses (into a temp file, renamed into place,
// so a crashed producer never leaves a torn snapshot visible), the served
// spec grows to cover the new step, and any cached reader for an
// overwritten path is invalidated. Publish blocks while a lossless (Block)
// subscriber's queue is full — that backpressure is the point: the
// producer's RespOK is withheld until every lossless consumer has room.
func (s *Server) ingest(path string, fp *FilePayload) error {
	step, file, ok := genx.ParseSnapshotFile(path)
	if !ok || !filepath.IsLocal(path) {
		return &ServerError{Code: CodeBadRequest, Msg: fmt.Sprintf("bad ingest path %q", path)}
	}
	dst := filepath.Join(s.opts.Dir, path)
	tmp := dst + ".ingest"
	if err := genx.WriteBlockDataFile(tmp, fp.Time, step, fp.StepID, fp.Blocks); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	s.cache.invalidate(dst)
	// Cached encoded responses for the replaced file are stale too (and
	// their generation bump keeps in-flight builders from re-caching old
	// bytes). Payload-cache keys use the request path, not the joined one.
	s.payloads.invalidate(path)

	fields := make(map[string]struct{})
	maxBlock := 0
	for _, bd := range fp.Blocks {
		if bd.ID+1 > maxBlock {
			maxBlock = bd.ID + 1
		}
		for name := range bd.Node {
			fields[name] = struct{}{}
		}
		for name := range bd.Elem {
			fields[name] = struct{}{}
		}
	}
	names := make([]string, 0, len(fields))
	for name := range fields {
		names = append(names, name)
	}
	sort.Strings(names)

	s.mu.Lock()
	if step+1 > s.spec.Snapshots {
		s.spec.Snapshots = step + 1
	}
	if file+1 > s.spec.FilesPerSnapshot {
		s.spec.FilesPerSnapshot = file + 1
	}
	if maxBlock > s.spec.Blocks {
		s.spec.Blocks = maxBlock
	}
	if s.spec.DT == 0 && fp.Time > 0 {
		s.spec.DT = fp.Time / float64(step+1)
	}
	s.stats.Ingests++
	s.mu.Unlock()

	_, err := s.reg.Publish(push.Event{
		Step:   step,
		File:   file,
		Path:   path,
		StepID: fp.StepID,
		Time:   fp.Time,
		Fields: names,
	})
	if err != nil && err != push.ErrClosed {
		return err
	}
	return nil
}

// handleSubscribe turns a connection into a long-lived event stream: it
// registers the requested match rule, acknowledges with RespOK, and then
// writes one OpEvent frame per delivered event until the stream ends. The
// handler goroutine itself is the fan-out writer — no extra goroutine, so
// the stream's lifetime is exactly the connection handler's. Empty OpEvent
// heartbeats flow while the queue is idle, bounding how long a dead peer
// goes unnoticed; each write carries a deadline, bounding how long a
// stalled peer can hold the subscription (and, through a Block queue, the
// producer).
func (s *Server) handleSubscribe(conn net.Conn, body []byte) {
	conn.SetWriteDeadline(time.Now().Add(s.opts.IdleTimeout))
	spec, opts, err := decodeSubReq(body)
	if err != nil {
		s.countError()
		writeFrame(conn, RespErr, encodeErr(CodeBadRequest, err.Error()))
		return
	}
	sub, err := s.reg.Subscribe(spec, opts)
	if err != nil {
		s.countError()
		writeFrame(conn, RespErr, encodeErr(CodeUnavailable, err.Error()))
		return
	}
	defer sub.Close()
	if err := writeFrame(conn, RespOK, nil); err != nil {
		return
	}
	s.mu.Lock()
	s.stats.Subscriptions++
	s.mu.Unlock()
	for {
		ev, ok, closed := sub.NextTimeout(s.opts.Heartbeat)
		if closed {
			return // subscriber or server shut down
		}
		var frame []byte
		if ok {
			if stall, delay := s.stallAction(); stall {
				time.Sleep(delay)
			}
			frame = encodeEvent(ev)
		}
		conn.SetWriteDeadline(time.Now().Add(s.opts.IdleTimeout))
		if err := writeFrame(conn, OpEvent, frame); err != nil {
			return // peer gone or stalled past the deadline
		}
		s.mu.Lock()
		s.stats.BytesOut += int64(6 + len(frame))
		if ok {
			s.stats.EventsOut++
		}
		s.mu.Unlock()
	}
}

// countError bumps the error-response counter.
func (s *Server) countError() {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
}

// stallAction draws one slow-subscriber fault decision for an event write.
func (s *Server) stallAction() (bool, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.faults
	if f.StallFrac <= 0 {
		return false, 0
	}
	if s.rng.Float64() < f.StallFrac {
		s.stats.FaultsInjected++
		return true, f.Delay
	}
	return false, 0
}

// --- LRU cache of open snapshot readers ---

type cacheEntry struct {
	path   string
	h      *genx.FileHandle
	mu     sync.Mutex // serializes reads through the handle
	refs   int
	stamp  int64 // LRU clock at last acquire
	doomed bool  // invalidated while pinned; close on last release
}

type readerCache struct {
	mu      sync.Mutex
	max     int
	clock   int64
	entries map[string]*cacheEntry

	hits, opens, evicts int64
}

func newReaderCache(max int) *readerCache {
	return &readerCache{max: max, entries: make(map[string]*cacheEntry)}
}

func (rc *readerCache) counters() (hits, opens, evicts int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.hits, rc.opens, rc.evicts
}

// acquire returns an open reader for path, opening and caching it on a miss
// and evicting idle least-recently-used readers beyond the cap. The entry
// stays pinned (refs > 0) until release, so eviction never closes a file
// mid-read; when every cached file is busy the cache temporarily exceeds
// its cap instead.
func (rc *readerCache) acquire(path string) (*cacheEntry, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.clock++
	if e, ok := rc.entries[path]; ok {
		e.refs++
		e.stamp = rc.clock
		rc.hits++
		return e, nil
	}
	// lint:ignore deadlockcheck opening under rc.mu gives each path
	// single-open semantics (concurrent misses for one file dial the disk
	// once); rc.mu is ordered before the platform leaves only.
	// Mapped readers make fetched payloads alias the snapshot file's mmap,
	// so scatter-send writes them straight from the page cache; shdf falls
	// back to heap-backed reads where mmap is unavailable.
	h, err := (&genx.Reader{Mapped: true}).Open(path)
	if err != nil {
		return nil, err
	}
	rc.opens++
	e := &cacheEntry{path: path, h: h, refs: 1, stamp: rc.clock}
	rc.entries[path] = e
	for len(rc.entries) > rc.max {
		victim := (*cacheEntry)(nil)
		for _, c := range rc.entries {
			if c.refs == 0 && (victim == nil || c.stamp < victim.stamp) {
				victim = c
			}
		}
		if victim == nil {
			break // everything busy; stay over cap until releases catch up
		}
		delete(rc.entries, victim.path)
		victim.h.Close()
		rc.evicts++
	}
	return e, nil
}

func (rc *readerCache) release(e *cacheEntry) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e.refs--
	if e.doomed && e.refs == 0 {
		e.h.Close()
		e.doomed = false
	}
}

// invalidate drops the cache entry for path after its file is replaced on
// disk: a cached reader still maps the old bytes, so it must never serve
// another fetch. A pinned entry keeps serving in-flight fetches (the old
// mapping stays valid until close) and is closed on its last release.
func (rc *readerCache) invalidate(path string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e, ok := rc.entries[path]
	if !ok {
		return
	}
	delete(rc.entries, path)
	if e.refs == 0 {
		e.h.Close()
	} else {
		e.doomed = true
	}
	rc.evicts++
}

func (rc *readerCache) closeAll() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, e := range rc.entries {
		e.h.Close()
	}
	rc.entries = make(map[string]*cacheEntry)
}
