package remote

import (
	"fmt"

	"godiva/internal/core"
	"godiva/internal/genx"
)

// Resolver maps a processing-unit name to the snapshot files holding its
// data, as paths in the server's namespace (relative to godivad's -data
// directory). The paper passes the unit name back to the read function for
// exactly this kind of name-to-dataset mapping.
type Resolver func(unit string) ([]string, error)

// CommitFunc stores one fetched block into the database through the unit
// handle, the remote counterpart of the commit step inside a local read
// function. It must copy field data into database buffers: the BlockData
// may be shared with coalesced fetchers, and its arrays alias a pooled
// response buffer that NewReadFunc recycles once the file is committed.
type CommitFunc func(u *core.Unit, bd *genx.BlockData) error

// fetched is one file's payload (or fetch error) traveling from the
// fetcher to the committer, in paths order.
type fetched struct {
	fp  *FilePayload
	err error
}

// NewReadFunc manufactures a developer-supplied read function (paper §3.3)
// backed by a godivad server: it resolves the unit name to snapshot files,
// fetches each file's blocks with the given variables, and commits them.
// The returned function plugs into AddUnit/ReadUnit like any local read
// function — background workers prefetch remote units, failures after retry
// exhaustion land the unit in the failed state exactly like a local read
// error, and N workers asking for the same file share one RPC.
//
// Multi-file units are pipelined: a fetcher goroutine stays one step ahead
// of the commit loop, so the wire time of file i+1 overlaps committing
// file i. Against a batch-capable server the fetcher pulls MaxBatch files
// per OpFetchBatch RPC; against a v2.0 server it prefetches file by file.
// Either way files are committed strictly in paths order.
func NewReadFunc(c *Client, resolve Resolver, vars []string, commit CommitFunc) core.ReadFunc {
	return func(u *core.Unit) error {
		paths, err := resolve(u.Name())
		if err != nil {
			return err
		}
		if len(paths) <= 1 {
			// Nothing to overlap: fetch and commit inline.
			for _, path := range paths {
				if err := fetchCommit(c, path, vars, u, commit); err != nil {
					return err
				}
			}
			return nil
		}

		// The channel is the pipeline: buffered one chunk deep, FIFO, so
		// the committer drains payloads in exactly the order the fetcher
		// queued them (= paths order) while the fetcher works ahead.
		out := make(chan fetched, c.opts.MaxBatch)
		stop := make(chan struct{})
		go func() {
			defer close(out)
			for start := 0; start < len(paths); {
				chunk := 1
				if c.batchSupported() && c.opts.MaxBatch > 1 {
					chunk = c.opts.MaxBatch
				}
				end := start + chunk
				if end > len(paths) {
					end = len(paths)
				}
				if !c.sendChunk(paths[start:end], vars, out, stop) {
					return // committer bailed; undelivered payloads recycled
				}
				start = end
			}
		}()
		defer func() {
			close(stop)
			// Drain until the fetcher closes out, so it never blocks on a
			// send nobody receives; recycle whatever it had in flight.
			for f := range out {
				if f.fp != nil {
					f.fp.Recycle()
				}
			}
		}()

		for range paths {
			f, ok := <-out
			if !ok {
				return fmt.Errorf("remote: fetch pipeline ended early")
			}
			if f.err != nil {
				return f.err
			}
			if err := commitPayload(u, f.fp, commit); err != nil {
				return err
			}
		}
		return nil
	}
}

// sendChunk fetches one chunk of paths (one batched RPC when the chunk is
// larger than 1) and queues the results in order. It reports false — after
// recycling every undelivered payload — when the committer has stopped
// receiving.
func (c *Client) sendChunk(paths []string, vars []string, out chan<- fetched, stop <-chan struct{}) bool {
	var results []fetched
	if len(paths) == 1 {
		fp, err := c.FetchFile(paths[0], vars)
		results = []fetched{{fp: fp, err: err}}
	} else {
		fps, err := c.FetchFiles(paths, vars)
		if err != nil {
			results = []fetched{{err: err}}
		} else {
			results = make([]fetched, len(fps))
			for i, fp := range fps {
				results[i] = fetched{fp: fp}
			}
		}
	}
	for i, f := range results {
		select {
		case out <- f:
		case <-stop:
			for _, g := range results[i:] {
				if g.fp != nil {
					g.fp.Recycle()
				}
			}
			return false
		}
	}
	return true
}

// fetchCommit is the unpipelined path: fetch one file, commit its blocks,
// recycle the payload.
func fetchCommit(c *Client, path string, vars []string, u *core.Unit, commit CommitFunc) error {
	fp, err := c.FetchFile(path, vars)
	if err != nil {
		return err
	}
	return commitPayload(u, fp, commit)
}

// commitPayload commits every block of one payload and recycles it.
// Committed buffers are copies; the payload's backing frame can go back to
// the pool for the next fetch.
func commitPayload(u *core.Unit, fp *FilePayload, commit CommitFunc) error {
	for _, bd := range fp.Blocks {
		if err := commit(u, bd); err != nil {
			fp.Recycle()
			return fmt.Errorf("remote: commit %s block %s: %w", fp.Path, bd.Name, err)
		}
	}
	fp.Recycle()
	return nil
}
