package remote

import (
	"fmt"

	"godiva/internal/core"
	"godiva/internal/genx"
)

// Resolver maps a processing-unit name to the snapshot files holding its
// data, as paths in the server's namespace (relative to godivad's -data
// directory). The paper passes the unit name back to the read function for
// exactly this kind of name-to-dataset mapping.
type Resolver func(unit string) ([]string, error)

// CommitFunc stores one fetched block into the database through the unit
// handle, the remote counterpart of the commit step inside a local read
// function. It must copy field data into database buffers: the BlockData
// may be shared with coalesced fetchers, and its arrays alias a pooled
// response buffer that NewReadFunc recycles once the file is committed.
type CommitFunc func(u *core.Unit, bd *genx.BlockData) error

// NewReadFunc manufactures a developer-supplied read function (paper §3.3)
// backed by a godivad server: it resolves the unit name to snapshot files,
// fetches each file's blocks with the given variables, and commits them.
// The returned function plugs into AddUnit/ReadUnit like any local read
// function — background workers prefetch remote units, failures after retry
// exhaustion land the unit in the failed state exactly like a local read
// error, and N workers asking for the same file share one RPC.
func NewReadFunc(c *Client, resolve Resolver, vars []string, commit CommitFunc) core.ReadFunc {
	return func(u *core.Unit) error {
		paths, err := resolve(u.Name())
		if err != nil {
			return err
		}
		for _, path := range paths {
			fp, err := c.FetchFile(path, vars)
			if err != nil {
				return err
			}
			for _, bd := range fp.Blocks {
				if err := commit(u, bd); err != nil {
					fp.Recycle()
					return fmt.Errorf("remote: commit %s block %s: %w", path, bd.Name, err)
				}
			}
			// Committed buffers are copies; the payload's backing frame can
			// go back to the pool for the next fetch.
			fp.Recycle()
		}
		return nil
	}
}
