package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"godiva/internal/push"
)

// Subscription errors. Match with errors.Is.
var (
	// ErrSubscriptionClosed reports a deliberate local shutdown: the
	// subscriber (or its Client) called Close. Not a failure.
	ErrSubscriptionClosed = errors.New("remote: subscription closed")
	// ErrSubscriptionLost reports an involuntary end: the server went away,
	// the stream timed out, or a frame was malformed. The wrapped cause is
	// attached; reconnect by calling Subscribe again (events missed while
	// disconnected are gone — see DESIGN.md on reconnect semantics).
	ErrSubscriptionLost = errors.New("remote: subscription lost")
)

// Subscription is a live event stream from a godivad server. Events arrive
// on Events(); the channel closes when the stream ends for any reason, after
// which Err reports why. A subscription owns a dedicated connection — it is
// not drawn from the client's RPC pool, so long-lived streams never starve
// fetches.
type Subscription struct {
	c      *Client
	conn   net.Conn
	events chan push.Event
	done   chan struct{}  // closed by Close; unblocks the event-channel send
	wg     sync.WaitGroup // joins the reader goroutine

	mu     sync.Mutex
	err    error
	closed bool
}

// Subscribe opens an event stream for the steps matching spec. opts.Queue
// sizes the local event channel (default 64); opts.Policy is enforced
// server-side (DropOldest streams may skip events under lag, Block streams
// apply backpressure to the producer). The returned subscription must be
// closed when no longer needed.
func (c *Client) Subscribe(spec push.Spec, opts push.Options) (*Subscription, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("remote: subscribe: %w", err)
	}
	conn.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	if err := writeFrame(conn, OpSubscribe, encodeSubReq(spec, opts)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: subscribe: %w", err)
	}
	op, body, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: subscribe: %w", err)
	}
	switch op {
	case RespOK:
	case RespErr:
		conn.Close()
		return nil, fmt.Errorf("remote: subscribe: %w", decodeErr(body))
	default:
		conn.Close()
		return nil, fmt.Errorf("remote: subscribe: %w: unexpected response op %#02x", ErrProtocol, op)
	}
	conn.SetDeadline(time.Time{})

	queue := opts.Queue
	if queue <= 0 {
		queue = 64
	}
	sub := &Subscription{
		c:      c,
		conn:   conn,
		events: make(chan push.Event, queue),
		done:   make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrClientClosed
	}
	c.subs[sub] = struct{}{}
	c.mu.Unlock()
	sub.wg.Add(1)
	go sub.readLoop()
	return sub, nil
}

// Events returns the stream's event channel. It closes when the stream
// ends; call Err afterwards to learn why.
func (s *Subscription) Events() <-chan push.Event { return s.events }

// Err reports why the event channel closed: ErrSubscriptionClosed after a
// local Close, or an ErrSubscriptionLost-wrapped cause after a transport or
// protocol failure. It returns nil while the stream is live.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close shuts the stream down: the connection is torn down, the reader
// goroutine joined, and the event channel closed. Idempotent; safe to call
// concurrently with event consumption.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.err == nil {
		s.err = ErrSubscriptionClosed
	}
	s.mu.Unlock()
	close(s.done)
	s.conn.Close()
	s.wg.Wait()
	s.c.mu.Lock()
	delete(s.c.subs, s)
	s.c.mu.Unlock()
}

// readLoop drains OpEvent frames from the connection into the event channel
// until the stream ends. It is the only reader of the connection; Close
// unblocks it by closing the socket.
func (s *Subscription) readLoop() {
	defer s.wg.Done()
	defer close(s.events)
	for {
		// The server emits heartbeats every opts.Heartbeat while idle, far
		// inside RequestTimeout, so a silent peer means a dead stream.
		s.conn.SetReadDeadline(time.Now().Add(s.c.opts.RequestTimeout))
		op, body, err := readFrame(s.conn)
		if err != nil {
			s.fail(err)
			return
		}
		if op != OpEvent {
			s.fail(fmt.Errorf("%w: unexpected stream op %#02x", ErrProtocol, op))
			return
		}
		if len(body) == 0 {
			continue // heartbeat
		}
		ev, err := decodeEvent(body)
		if err != nil {
			s.fail(err)
			return
		}
		ev.Created = time.Now() // local arrival stamp; wall clocks differ
		select {
		case s.events <- ev:
		case <-s.done:
			return
		}
	}
}

// fail records why the stream ended. A failure that races a local Close is
// reported as the Close (the socket error is just Close's side effect).
func (s *Subscription) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = fmt.Errorf("%w: %w", ErrSubscriptionLost, err)
	}
}
