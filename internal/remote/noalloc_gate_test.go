// AllocsPerRun gates for this package's //godiva:noalloc functions (see
// internal/noalloctest). Excluded under -race, whose instrumented runtime
// makes allocation counts meaningless.

//go:build !race

package remote

import (
	"testing"

	"godiva/internal/noalloctest"
)

func TestNoAllocGates(t *testing.T) {
	// Stats never touches the wire, so the unreachable address is fine:
	// connections are dialed lazily.
	c := NewClient(ClientOptions{Addr: "127.0.0.1:1"})
	defer c.Close()
	var s RemoteStats
	d := &dec{b: make([]byte, 64), off: 3}
	noalloctest.Check(t, ".", map[string]func(){
		"Client.Stats": func() {
			s = c.Stats()
		},
		"dec.align": func() {
			d.off = 3 // mid-field: align must skip a real pad each run
			d.align(8)
		},
	})
	if s.RPCs != 0 {
		t.Errorf("idle client reported %d RPCs, want 0", s.RPCs)
	}
	if d.off != 8 || d.err != nil {
		t.Errorf("align gate left off=%d err=%v, want 8, nil", d.off, d.err)
	}
}
