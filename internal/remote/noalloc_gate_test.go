// AllocsPerRun gates for this package's //godiva:noalloc functions (see
// internal/noalloctest). Excluded under -race, whose instrumented runtime
// makes allocation counts meaningless.

//go:build !race

package remote

import (
	"testing"

	"godiva/internal/noalloctest"
)

func TestNoAllocGates(t *testing.T) {
	// Stats never touches the wire, so the unreachable address is fine:
	// connections are dialed lazily.
	c := NewClient(ClientOptions{Addr: "127.0.0.1:1"})
	defer c.Close()
	var s RemoteStats
	noalloctest.Check(t, ".", map[string]func(){
		"Client.Stats": func() {
			s = c.Stats()
		},
	})
	if s.RPCs != 0 {
		t.Errorf("idle client reported %d RPCs, want 0", s.RPCs)
	}
}
