package remote

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Protocol v2.1: OpFetchBatch packs k (path, vars) fetches into one RPC and
// the server answers with one multi-file RespOK frame, so a k-file unit
// costs one round trip instead of k. The frame version byte stays 2 — a
// v2.0 peer simply answers CodeBadRequest ("unknown op") and the client
// degrades to per-file OpFetch, see Client.batchSupported.
//
// Request payload:
//
//	u16 count | per item: str path | u16 nvars | str vars...
//
// Response payload (RespOK):
//
//	u32 count
//	per item: u8 status
//	          status 1 (error): u16 code | str msg
//	          status 0 (ok):    pad to 4 | u32 bodyLen | pad to 8 |
//	                            bodyLen bytes of FilePayload body
//
// Every ok item's body starts at an 8-byte payload offset, so the body's
// internal alignment pads — computed against the body's own start when it
// was encoded (and cached) as a single-file response — line up with the
// whole frame's alignment and both sides keep aliasing array data in place.

// fetchReq is one decoded batch request item.
type fetchReq struct {
	path string
	vars []string
}

// encodeBatchReq serializes an OpFetchBatch request.
func encodeBatchReq(items []*batchItem) []byte {
	var e enc
	e.u16(uint16(len(items)))
	for _, it := range items {
		e.str(it.path)
		e.u16(uint16(len(it.vars)))
		for _, v := range it.vars {
			e.str(v)
		}
	}
	return e.b
}

// decodeBatchReq parses an OpFetchBatch request.
func decodeBatchReq(body []byte) ([]fetchReq, error) {
	d := dec{b: body}
	n := int(d.u16())
	// Every item costs at least 4 body bytes (path length prefix plus
	// variable count), so a count beyond that is a corrupt or hostile
	// frame; reject it before it sizes the allocation below.
	if n > (len(body)-2)/4 {
		return nil, fmt.Errorf("%w: batch count %d exceeds frame", ErrProtocol, n)
	}
	reqs := make([]fetchReq, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		var r fetchReq
		r.path = d.str()
		nv := int(d.u16())
		for j := 0; j < nv && d.err == nil; j++ {
			r.vars = append(r.vars, d.str())
		}
		reqs = append(reqs, r)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: batch request: %v", ErrProtocol, d.err)
	}
	return reqs, nil
}

// batchResult is one decoded batch response item: a payload, or a
// server-side per-item error (batch responses fail file by file, so one
// missing snapshot does not poison its whole unit).
type batchResult struct {
	fp  *FilePayload
	err *ServerError
}

// alignTo zero-pads the payload under construction to the next n-byte
// offset (n a power of two), mirroring dec.align.
func (s *segEnc) alignTo(n int) {
	for (s.base+len(s.e.b))%n != 0 {
		s.e.b = append(s.e.b, 0)
	}
}

// appendBatchItem appends one response item to the frame under
// construction: an error item, or an ok item whose body segments are
// borrowed verbatim (either freshly encoded or straight from the payload
// cache — the segments' internal pads are offset-relative, and the item
// header pads the body to a frame offset of 0 mod 8, so they compose).
func (s *segEnc) appendBatchItem(bodySegs [][]byte, bodyLen int, serr *ServerError) {
	if serr != nil {
		s.e.b = append(s.e.b, 1)
		s.e.u16(serr.Code)
		s.e.str(serr.Msg)
		return
	}
	s.e.b = append(s.e.b, 0)
	s.alignTo(4)
	s.e.u32(uint32(bodyLen))
	s.alignTo(8)
	s.flush()
	for _, seg := range bodySegs {
		if len(seg) > 0 {
			s.segs = append(s.segs, seg)
			s.base += len(seg)
		}
	}
}

// decodeBatchItems parses an OpFetchBatch response into per-item results.
// Ok bodies are decoded in place: their arrays alias body's backing buffer
// exactly like single-file responses. copied reports array bytes that could
// not be aliased.
func decodeBatchItems(body []byte) (results []batchResult, copied int64, err error) {
	d := dec{b: body}
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		st := d.need(1)
		if st == nil {
			break
		}
		if st[0] != 0 {
			code := d.u16()
			msg := d.str()
			if d.err != nil {
				break
			}
			results = append(results, batchResult{err: &ServerError{Code: code, Msg: msg}})
			continue
		}
		d.align(4)
		blen := int(d.u32())
		d.align(8)
		raw := d.need(blen)
		if raw == nil {
			break
		}
		sub := dec{b: raw}
		fp := sub.filePayload()
		if sub.err != nil {
			return nil, 0, fmt.Errorf("%w: batch item %d: %v", ErrProtocol, i, sub.err)
		}
		copied += sub.copied
		results = append(results, batchResult{fp: fp})
	}
	if d.err != nil {
		return nil, 0, fmt.Errorf("%w: batch response: %v", ErrProtocol, d.err)
	}
	return results, copied, nil
}

// --- client batching ---

// batchItem is one client-side fetch owned by a batch: its single-flight
// call entry plus the request it stands for.
type batchItem struct {
	key  string
	path string
	vars []string
	cl   *call
}

// fetchKey is the single-flight coalescing key of a (path, vars) fetch.
func fetchKey(path string, vars []string) string {
	return path + "\x00" + strings.Join(vars, "\x00")
}

// batchSupported reports whether the server is believed to speak
// OpFetchBatch. True until a batch RPC comes back CodeBadRequest — the
// deterministic answer of a v2.0 server to an unknown op — after which
// every fetch degrades to per-file OpFetch for the client's lifetime.
func (c *Client) batchSupported() bool { return !c.noBatch.Load() }

// FetchFiles fetches several snapshot files' payloads in one OpFetchBatch
// round trip (chunked at MaxBatch files per RPC), returning payloads in
// paths order. Each (path, vars) still coalesces with identical in-flight
// fetches, shares the response frame's pooled arena with its batch mates,
// and must be Recycled like a FetchFile result. Against a server without
// batch support the call degrades to per-file OpFetch transparently. On
// error every already-fetched payload is recycled and nil is returned.
func (c *Client) FetchFiles(paths []string, vars []string) ([]*FilePayload, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	calls := make([]*call, len(paths))
	var owned []*batchItem
	for i, path := range paths {
		key := fetchKey(path, vars)
		c.stats.Fetches++
		if cl, ok := c.calls[key]; ok {
			c.stats.Coalesced++
			cl.joiners++
			calls[i] = cl
			continue
		}
		cl := &call{done: make(chan struct{})}
		c.calls[key] = cl
		calls[i] = cl
		owned = append(owned, &batchItem{key: key, path: path, vars: vars, cl: cl})
	}
	c.mu.Unlock()
	if len(owned) > 0 {
		c.runBatch(owned)
	}

	out := make([]*FilePayload, len(paths))
	var firstErr error
	for i, cl := range calls {
		fp, err := c.await(cl)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[i] = fp
	}
	if firstErr != nil {
		for _, fp := range out {
			if fp != nil {
				fp.Recycle()
			}
		}
		return nil, firstErr
	}
	return out, nil
}

// runBatch completes every owned call, batching where the server allows it
// and falling back to sequential per-file fetches where it does not.
func (c *Client) runBatch(items []*batchItem) {
	if !c.batchSupported() || c.opts.MaxBatch <= 1 || len(items) == 1 {
		for _, it := range items {
			c.fetchOne(it)
		}
		return
	}
	max := c.opts.MaxBatch
	for start := 0; start < len(items); start += max {
		end := start + max
		if end > len(items) {
			end = len(items)
		}
		if !c.fetchBatchChunk(items[start:end]) {
			// The server does not speak OpFetchBatch (or the client is
			// closing): the chunk's calls were NOT completed — finish them
			// and every later chunk per file.
			for _, it := range items[start:] {
				c.fetchOne(it)
			}
			return
		}
	}
}

// fetchBatchChunk issues one OpFetchBatch RPC for up to MaxBatch items and
// completes their calls. It returns false — with the items' calls left
// uncompleted — only when the server rejected the op as unknown, so the
// caller can degrade to per-file fetches.
func (c *Client) fetchBatchChunk(items []*batchItem) bool {
	body, buf, err := c.rpc(OpFetchBatch, encodeBatchReq(items))
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) && se.Code == CodeBadRequest && c.batchSupported() {
			// A v2.0 server answers an unknown op with CodeBadRequest; a
			// v2.1 server never answers a well-formed batch frame with it.
			c.noBatch.Store(true)
			return false
		}
		for _, it := range items {
			c.complete(it, nil, nil, fmt.Errorf("remote: fetch batch %q: %w", it.path, err), 0)
		}
		return true
	}
	c.mu.Lock()
	c.stats.BatchedRPCs++
	c.mu.Unlock()
	results, copied, err := decodeBatchItems(body)
	if err == nil && len(results) != len(items) {
		err = fmt.Errorf("%w: batch response has %d items, want %d", ErrProtocol, len(results), len(items))
	}
	if err != nil {
		putFrameBuf(buf)
		for _, it := range items {
			c.complete(it, nil, nil, fmt.Errorf("remote: fetch batch %q: %w", it.path, err), 0)
		}
		return true
	}
	arena := &frameArena{buf: buf}
	nOK := 0
	for _, r := range results {
		if r.fp != nil {
			nOK++
		}
	}
	if nOK == 0 {
		putFrameBuf(buf)
		arena = nil
	} else {
		arena.refs.Store(int32(nOK))
	}
	perItemCopied := copied // charged once, on the first ok item
	for i, r := range results {
		it := items[i]
		switch {
		case r.fp != nil:
			r.fp.Path = it.path
			c.complete(it, r.fp, arena, nil, perItemCopied)
			perItemCopied = 0
		case r.err != nil && r.err.Retryable():
			// The server could not fit this item into the frame (or
			// answered a transient condition): fetch it on its own, with
			// the usual retry policy.
			c.fetchOne(it)
		default:
			c.complete(it, nil, nil, fmt.Errorf("remote: fetch %q: %w", it.path, r.err), 0)
		}
	}
	return true
}

// fetchOne performs one per-file OpFetch for an owned call and completes
// it — the pre-batch fetch path, still used for single fetches, v2.0
// servers and per-item batch fallbacks.
func (c *Client) fetchOne(it *batchItem) {
	body, buf, err := c.rpc(OpFetch, encodeFetchReq(it.path, it.vars))
	var fp *FilePayload
	var copied int64
	if err == nil {
		fp, copied, err = decodeFilePayload(body)
		if fp != nil {
			fp.Path = it.path
		}
		if err != nil {
			putFrameBuf(buf)
			buf = nil
		}
	}
	if err != nil {
		err = fmt.Errorf("remote: fetch %q: %w", it.path, err)
	}
	var arena *frameArena
	if fp != nil && buf != nil {
		arena = &frameArena{buf: buf}
		arena.refs.Store(1)
	}
	c.complete(it, fp, arena, err, copied)
}

// complete publishes an owned call's result: the call leaves the
// single-flight table, the payload's reference count covers the owner plus
// every coalesced joiner, and the closed done channel releases them all.
func (c *Client) complete(it *batchItem, fp *FilePayload, arena *frameArena, err error, copied int64) {
	c.mu.Lock()
	delete(c.calls, it.key)
	joiners := it.cl.joiners // final: no joiner can arrive after the delete
	if err != nil {
		c.stats.Errors++
	} else {
		c.stats.BytesCopied += copied
	}
	c.mu.Unlock()
	if fp != nil && arena != nil {
		fp.arena = arena
		fp.refs.Store(int32(1 + joiners))
	}
	// lint:ignore lockcheck cl.fp/cl.err are published by close(cl.done):
	// waiters only read them after receiving from the channel, which
	// happens-after this write. The mutex never guards these fields.
	it.cl.fp, it.cl.err = fp, err
	close(it.cl.done)
}

// enqueueWindowed adds an owned fetch to the batching window: distinct
// in-flight fetches arriving within BatchWindow of each other coalesce
// into one OpFetchBatch RPC. The first enqueuer becomes the window's
// leader; it sleeps until the window closes (or the batch fills, or the
// client closes) and then fires the batch for everyone. Callers wait on
// their own call's done channel as usual.
func (c *Client) enqueueWindowed(it *batchItem) {
	c.mu.Lock()
	c.pending = append(c.pending, it)
	leader := len(c.pending) == 1
	var flush chan struct{}
	if leader {
		c.flush = make(chan struct{})
		flush = c.flush
	} else if len(c.pending) >= c.opts.MaxBatch && c.flush != nil {
		close(c.flush) // batch is full: wake the leader early
		c.flush = nil
	}
	c.mu.Unlock()
	if !leader {
		return
	}
	timer := time.NewTimer(c.opts.BatchWindow)
	select {
	case <-timer.C:
	case <-flush:
	case <-c.done:
		// Fall through and fire anyway: the RPC fails fast with
		// ErrClientClosed and completes every pending call.
	}
	timer.Stop()
	c.mu.Lock()
	batch := c.pending
	c.pending = nil
	c.flush = nil
	c.mu.Unlock()
	c.runBatch(batch)
}
