package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"godiva/internal/genx"
)

// ClientOptions configures a unit client.
type ClientOptions struct {
	// Addr is the godivad server address (host:port). Required.
	Addr string
	// PoolSize bounds the number of concurrent connections (default 4);
	// with N I/O workers a pool of N keeps every worker's fetch in flight.
	PoolSize int
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// RequestTimeout is the per-request deadline covering the write of the
	// request and the read of the full response (default 30s).
	RequestTimeout time.Duration
	// MaxRetries is how many times a transient failure is retried after the
	// first attempt (default 4). Transient means a transport error — dial
	// failure, timeout, connection dropped mid-payload — or a
	// CodeUnavailable answer; other protocol errors are permanent.
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff between retries:
	// attempt n waits about RetryBase·2ⁿ⁻¹ (capped at RetryMax), half fixed
	// and half jittered so coordinated workers decorrelate. Defaults 20ms
	// and 500ms.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxBatch caps how many files one OpFetchBatch RPC carries (default
	// 8). FetchFiles chunks larger requests; 1 disables batching.
	MaxBatch int
	// BatchWindow, when positive, holds each FetchFile for up to this long
	// so distinct concurrent fetches coalesce into one OpFetchBatch RPC
	// (Nagle for fetches). Off by default: single fetches keep their
	// latency, and FetchFiles callers batch explicitly.
	BatchWindow time.Duration
	// IdleConnTimeout drops pooled connections unused for this long
	// (default 60s), so a quiet client does not pin dead TCP state across
	// server restarts. Negative disables idle reaping.
	IdleConnTimeout time.Duration
	// ConnMaxAge recycles pooled connections older than this regardless of
	// use (default 10m), bounding how long a long-lived voyager keeps any
	// one conn. Negative disables age recycling.
	ConnMaxAge time.Duration
}

func (o *ClientOptions) setDefaults() {
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 20 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 500 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.IdleConnTimeout == 0 {
		o.IdleConnTimeout = 60 * time.Second
	}
	if o.ConnMaxAge == 0 {
		o.ConnMaxAge = 10 * time.Minute
	}
}

// RemoteStats is a snapshot of the client's operation counters, surfaced
// alongside DB.Stats (see core.DB.RegisterStatsSource) so a run's transport
// behavior is visible next to its unit accounting.
type RemoteStats struct {
	Fetches   int64 // logical fetches requested (including coalesced)
	Coalesced int64 // fetches served by joining an identical in-flight RPC
	RPCs      int64 // wire attempts issued (dials and round-trips)
	Retries   int64 // attempts beyond the first, after transient failures
	Errors    int64 // fetches that failed permanently (retries exhausted
	//                         or a non-retryable protocol error)
	BatchedRPCs   int64 // OpFetchBatch frames answered (each covers many fetches)
	ConnsRecycled int64 // pooled conns dropped for idleness or age
	BytesIn       int64 // response payload bytes received
	BytesCopied   int64 // payload array bytes copied while decoding fetches
	//                   (the rest alias the pooled response frame; nonzero
	//                   only on big-endian hosts)
	Latency time.Duration // cumulative round-trip time of successful RPCs
}

// call is one in-flight single-flight fetch.
type call struct {
	done    chan struct{}
	joiners int // fetchers coalesced onto this call, beyond the owner;
	//             final once the call leaves c.calls (guarded by c.mu)
	fp  *FilePayload
	err error
}

// Client fetches unit payloads from a godivad server. It is safe for
// concurrent use by many goroutines (the I/O worker pool): connections are
// pooled and bounded, identical concurrent fetches are coalesced into one
// RPC, and transient failures are retried with exponential backoff and
// jitter.
type Client struct {
	opts    ClientOptions
	sem     chan struct{} // bounds concurrent in-use connections
	done    chan struct{} // closed by Close
	noBatch atomic.Bool   // server answered OpFetchBatch with "unknown op"

	mu      sync.Mutex
	idle    []*pooledConn
	calls   map[string]*call
	pending []*batchItem  // fetches parked in the batching window
	flush   chan struct{} // closed to wake the window leader early
	subs    map[*Subscription]struct{}
	rng     *rand.Rand
	stats   RemoteStats
	closed  bool
}

// pooledConn is one idle pooled connection with the stamps conn-pool
// hygiene runs on.
type pooledConn struct {
	conn net.Conn
	born time.Time // dial time, for ConnMaxAge
	last time.Time // last return to the pool, for IdleConnTimeout
}

// NewClient creates a client for the given server. Connections are dialed
// lazily; use Ping to verify the server is reachable.
func NewClient(opts ClientOptions) *Client {
	opts.setDefaults()
	c := &Client{
		opts:  opts,
		sem:   make(chan struct{}, opts.PoolSize),
		done:  make(chan struct{}),
		calls: make(map[string]*call),
		subs:  make(map[*Subscription]struct{}),
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if opts.IdleConnTimeout > 0 || opts.ConnMaxAge > 0 {
		go c.reapLoop()
	}
	return c
}

// reapLoop periodically sweeps the idle pool for connections past their
// idle timeout or max age, so dead TCP state (a restarted server, a dropped
// NAT mapping) is shed without waiting for the next fetch to trip over it.
func (c *Client) reapLoop() {
	period := c.opts.IdleConnTimeout
	if period <= 0 || (c.opts.ConnMaxAge > 0 && c.opts.ConnMaxAge < period) {
		period = c.opts.ConnMaxAge
	}
	period /= 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			c.reapIdle(time.Now())
		case <-c.done:
			return
		}
	}
}

// reapIdle closes and drops every pooled connection that is stale at now,
// counting each in ConnsRecycled.
func (c *Client) reapIdle(now time.Time) {
	var dead []*pooledConn
	c.mu.Lock()
	kept := c.idle[:0]
	for _, pc := range c.idle {
		if c.staleLocked(pc, now) {
			dead = append(dead, pc)
		} else {
			kept = append(kept, pc)
		}
	}
	c.idle = kept
	c.stats.ConnsRecycled += int64(len(dead))
	c.mu.Unlock()
	for _, pc := range dead {
		pc.conn.Close()
	}
}

// staleLocked reports whether a pooled connection is past its idle timeout
// or max age.
func (c *Client) staleLocked(pc *pooledConn, now time.Time) bool {
	if t := c.opts.IdleConnTimeout; t > 0 && now.Sub(pc.last) > t {
		return true
	}
	if t := c.opts.ConnMaxAge; t > 0 && now.Sub(pc.born) > t {
		return true
	}
	return false
}

// Stats returns a snapshot of the client counters.
//
//godiva:noalloc
func (c *Client) Stats() RemoteStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close releases every pooled connection, severs active subscriptions
// (their event channels close with ErrSubscriptionClosed) and fails
// subsequent and blocked operations with ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	subs := make([]*Subscription, 0, len(c.subs))
	for sub := range c.subs {
		subs = append(subs, sub)
	}
	c.mu.Unlock()
	close(c.done)
	for _, pc := range idle {
		pc.conn.Close()
	}
	for _, sub := range subs {
		sub.Close()
	}
	return nil
}

// Ping checks the server is reachable and speaking the protocol.
func (c *Client) Ping() error {
	_, buf, err := c.rpc(OpPing, nil)
	if buf != nil {
		putFrameBuf(buf)
	}
	return err
}

// Spec asks the server for the served dataset's shape: snapshot count,
// files per snapshot, block count and time step (the same subset of
// genx.Spec that genx.Discover recovers from local files).
func (c *Client) Spec() (genx.Spec, error) {
	body, buf, err := c.rpc(OpSpec, nil)
	if err != nil {
		return genx.Spec{}, err
	}
	spec, err := decodeSpec(body)
	putFrameBuf(buf)
	return spec, err
}

// Ingest pushes one snapshot file's payload to the server, which must be
// running with ingest enabled. path names the destination file inside the
// server's snapshot directory (a bare genx snapshot file name); the payload
// travels as scattered segments borrowing fp's arrays, so large steps are
// not assembled client-side first. On success the file is durably written
// on the server and matching subscribers have been notified.
func (c *Client) Ingest(path string, fp *FilePayload) error {
	segs, _, err := encodeIngestSegments(path, fp, maxFrame-2)
	if err != nil {
		return fmt.Errorf("remote: ingest %q: %w", path, err)
	}
	_, buf, err := c.rpcSegs(OpIngest, segs)
	if buf != nil {
		putFrameBuf(buf)
	}
	if err != nil {
		return fmt.Errorf("remote: ingest %q: %w", path, err)
	}
	return nil
}

// FetchFile fetches one snapshot file's unit payload: every block with its
// mesh arrays plus the named variable fields. Concurrent calls for the same
// (path, vars) join a single RPC; the shared payload must be treated as
// read-only. The payload's arrays alias a pooled response buffer — every
// caller that got the payload should call its Recycle when done with it so
// the buffer is reused (and must not touch the payload afterwards).
func (c *Client) FetchFile(path string, vars []string) (*FilePayload, error) {
	key := fetchKey(path, vars)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.stats.Fetches++
	if cl, ok := c.calls[key]; ok {
		c.stats.Coalesced++
		cl.joiners++
		c.mu.Unlock()
		return c.await(cl)
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.mu.Unlock()
	it := &batchItem{key: key, path: path, vars: vars, cl: cl}
	if c.opts.BatchWindow > 0 && c.opts.MaxBatch > 1 && c.batchSupported() {
		c.enqueueWindowed(it)
	} else {
		c.fetchOne(it)
	}
	return c.await(cl)
}

// await blocks until a call completes (or the client closes) and returns
// its result.
func (c *Client) await(cl *call) (*FilePayload, error) {
	select {
	case <-cl.done:
		// lint:ignore lockcheck cl.fp/cl.err are written once by the
		// completing goroutine before close(cl.done); the receive above
		// happens-after that write, so no mutex is needed here.
		return cl.fp, cl.err
	case <-c.done:
		return nil, ErrClientClosed
	}
}

// retryable reports whether an attempt's failure is worth retrying.
func retryable(err error) bool {
	if errors.Is(err, ErrClientClosed) {
		return false
	}
	var se *ServerError
	if errors.As(err, &se) {
		return se.Retryable()
	}
	// Everything else is transport trouble: dial failures, deadlines,
	// connections dropped mid-payload, garbled frames from a torn write.
	return true
}

// rpc performs one request with retries. On success it returns the response
// payload plus the pooled frame buffer backing it; the caller must hand buf
// to putFrameBuf (or park it in a FilePayload arena) once the payload is
// dead.
func (c *Client) rpc(op byte, body []byte) (resp, buf []byte, err error) {
	var segs [][]byte
	if len(body) > 0 {
		segs = [][]byte{body}
	}
	return c.rpcSegs(op, segs)
}

// rpcSegs is rpc with a scattered request payload: segments go to the
// socket with a vectored write, so bulky ingest bodies borrow the caller's
// arrays instead of being assembled first. Segments must stay alive and
// unchanged until rpcSegs returns (they may be re-sent on retry).
func (c *Client) rpcSegs(op byte, segs [][]byte) (resp, buf []byte, err error) {
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.stats.Retries++
			d := c.backoffLocked(attempt)
			c.mu.Unlock()
			select {
			case <-time.After(d):
			case <-c.done:
				return nil, nil, ErrClientClosed
			}
		}
		resp, buf, err := c.attempt(op, segs)
		if err == nil {
			return resp, buf, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, nil, err
		}
	}
	return nil, nil, fmt.Errorf("remote: %d attempts failed, giving up: %w",
		c.opts.MaxRetries+1, lastErr)
}

// backoffLocked computes the pre-attempt backoff: exponential in the
// attempt number, capped, half fixed and half jittered. Caller holds c.mu
// (the jitter RNG is not concurrency-safe).
func (c *Client) backoffLocked(attempt int) time.Duration {
	d := c.opts.RetryBase << (attempt - 1)
	if d > c.opts.RetryMax || d <= 0 {
		d = c.opts.RetryMax
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// attempt performs one wire round-trip on a pooled connection. The response
// payload is read into a pooled frame buffer, returned to the caller on
// success (see rpc) and back to the pool on every failure path.
func (c *Client) attempt(op byte, segs [][]byte) ([]byte, []byte, error) {
	start := time.Now()
	c.mu.Lock()
	c.stats.RPCs++
	c.mu.Unlock()
	pc, err := c.getConn()
	if err != nil {
		return nil, nil, err
	}
	conn := pc.conn
	deadline := start.Add(c.opts.RequestTimeout)
	conn.SetDeadline(deadline)
	rop, buf, rbody, err := func() (byte, []byte, []byte, error) {
		if err := writeFrameBuffers(conn, op, segs); err != nil {
			return 0, nil, nil, err
		}
		return readFramePooled(conn)
	}()
	if err != nil {
		// The connection is in an unknown state (possibly mid-frame): drop
		// it rather than return it to the pool.
		conn.Close()
		c.releaseSlot()
		return nil, nil, err
	}
	conn.SetDeadline(time.Time{})
	c.putConn(pc)
	if rop == RespErr {
		serr := decodeErr(rbody)
		putFrameBuf(buf)
		return nil, nil, serr
	}
	if rop != RespOK {
		putFrameBuf(buf)
		return nil, nil, fmt.Errorf("%w: unexpected response op %#02x", ErrProtocol, rop)
	}
	c.mu.Lock()
	c.stats.BytesIn += int64(len(rbody))
	c.stats.Latency += time.Since(start)
	c.mu.Unlock()
	return rbody, buf, nil
}

// getConn acquires a pool slot and returns an idle or freshly dialed
// connection. Every successful getConn must be paired with putConn or
// releaseSlot.
func (c *Client) getConn() (*pooledConn, error) {
	select {
	case c.sem <- struct{}{}:
	case <-c.done:
		return nil, ErrClientClosed
	}
	now := time.Now()
	var stale []*pooledConn
	var pc *pooledConn
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.releaseSlot()
		return nil, ErrClientClosed
	}
	for pc == nil && len(c.idle) > 0 {
		n := len(c.idle)
		cand := c.idle[n-1]
		c.idle = c.idle[:n-1]
		if c.staleLocked(cand, now) {
			// Recycle rather than reuse: a conn idle past the timeout (or
			// simply old) may be dead server-side, and a fresh dial is
			// cheaper than burning a retry on it.
			stale = append(stale, cand)
			c.stats.ConnsRecycled++
			continue
		}
		pc = cand
	}
	c.mu.Unlock()
	for _, s := range stale {
		s.conn.Close()
	}
	if pc != nil {
		return pc, nil
	}
	conn, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
	if err != nil {
		c.releaseSlot()
		return nil, err
	}
	return &pooledConn{conn: conn, born: now, last: now}, nil
}

// putConn returns a healthy connection to the idle pool.
func (c *Client) putConn(pc *pooledConn) {
	c.mu.Lock()
	pc.last = time.Now()
	if c.closed {
		c.mu.Unlock()
		pc.conn.Close()
		c.releaseSlot()
		return
	}
	c.idle = append(c.idle, pc)
	c.mu.Unlock()
	c.releaseSlot()
}

func (c *Client) releaseSlot() { <-c.sem }
