package remote

import (
	"fmt"
	"sort"

	"godiva/internal/genx"
	"godiva/internal/mesh"
)

// FilePayload is one snapshot file's unit payload: every block stored in the
// file with its mesh arrays and the requested variable fields — exactly what
// a local read function obtains from genx.FileHandle.ReadBlock, so records
// committed from it are byte-identical to local SHDF reads.
//
// Payloads returned by Client.FetchFile may be shared between coalesced
// callers and must be treated as read-only; commit callbacks copy field data
// into database buffers.
type FilePayload struct {
	Path   string // request path, in the server's namespace
	Time   float64
	StepID string
	Blocks []*genx.BlockData
}

// Bytes returns the payload's approximate data volume: the raw size of every
// mesh and field array it carries.
func (fp *FilePayload) Bytes() int64 {
	var n int64
	for _, bd := range fp.Blocks {
		if bd.Mesh != nil {
			n += int64(8*len(bd.Mesh.Coords) + 4*len(bd.Mesh.Tets) + 8*len(bd.Mesh.GlobalNode))
		}
		for _, v := range bd.Node {
			n += int64(8 * len(v))
		}
		for _, v := range bd.Elem {
			n += int64(8 * len(v))
		}
	}
	return n
}

// sortedKeys returns a map's keys in sorted order, for deterministic frames.
func sortedKeys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// encodeFilePayload serializes a FilePayload:
//
//	f64 time | str stepID | u32 nblocks
//	per block: u32 id | str name
//	           u32 ncoords + f64... | u32 ntets + i32... | u32 ngids + i64...
//	           u16 nnode  (per field: str name | u32 n + f64...)
//	           u16 nelem  (per field: str name | u32 n + f64...)
func encodeFilePayload(fp *FilePayload) []byte {
	var e enc
	e.f64(fp.Time)
	e.str(fp.StepID)
	e.u32(uint32(len(fp.Blocks)))
	for _, bd := range fp.Blocks {
		e.u32(uint32(bd.ID))
		e.str(bd.Name)
		e.f64s(bd.Mesh.Coords)
		e.i32s(bd.Mesh.Tets)
		e.i64s(bd.Mesh.GlobalNode)
		e.u16(uint16(len(bd.Node)))
		for _, name := range sortedKeys(bd.Node) {
			e.str(name)
			e.f64s(bd.Node[name])
		}
		e.u16(uint16(len(bd.Elem)))
		for _, name := range sortedKeys(bd.Elem) {
			e.str(name)
			e.f64s(bd.Elem[name])
		}
	}
	return e.b
}

// decodeFilePayload parses an encoded FilePayload.
func decodeFilePayload(body []byte) (*FilePayload, error) {
	d := dec{b: body}
	fp := &FilePayload{Time: d.f64(), StepID: d.str()}
	nblocks := int(d.u32())
	for i := 0; i < nblocks && d.err == nil; i++ {
		bd := &genx.BlockData{
			ID:   int(d.u32()),
			Name: d.str(),
			Mesh: &mesh.TetMesh{},
			Node: make(map[string][]float64),
			Elem: make(map[string][]float64),
		}
		bd.Mesh.Coords = d.f64s()
		bd.Mesh.Tets = d.i32s()
		bd.Mesh.GlobalNode = d.i64s()
		nnode := int(d.u16())
		for j := 0; j < nnode && d.err == nil; j++ {
			bd.Node[d.str()] = d.f64s()
		}
		nelem := int(d.u16())
		for j := 0; j < nelem && d.err == nil; j++ {
			bd.Elem[d.str()] = d.f64s()
		}
		bd.Time = fp.Time
		bd.StepID = fp.StepID
		fp.Blocks = append(fp.Blocks, bd)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: file payload: %v", ErrProtocol, d.err)
	}
	return fp, nil
}

// encodeSpec serializes the dataset shape answered by OpSpec. The mesh
// geometry is not carried — remote readers need only the counts and the
// time step (genx.Discover recovers the same subset from local files).
func encodeSpec(s genx.Spec) []byte {
	var e enc
	e.u32(uint32(s.Snapshots))
	e.u32(uint32(s.FilesPerSnapshot))
	e.u32(uint32(s.Blocks))
	e.f64(s.DT)
	return e.b
}

// decodeSpec parses an OpSpec response.
func decodeSpec(body []byte) (genx.Spec, error) {
	d := dec{b: body}
	s := genx.Spec{
		Snapshots:        int(d.u32()),
		FilesPerSnapshot: int(d.u32()),
		Blocks:           int(d.u32()),
	}
	s.DT = d.f64()
	if d.err != nil {
		return genx.Spec{}, fmt.Errorf("%w: spec payload: %v", ErrProtocol, d.err)
	}
	return s, nil
}

// encodeFetchReq serializes an OpFetch request.
func encodeFetchReq(path string, vars []string) []byte {
	var e enc
	e.str(path)
	e.u16(uint16(len(vars)))
	for _, v := range vars {
		e.str(v)
	}
	return e.b
}

// decodeFetchReq parses an OpFetch request.
func decodeFetchReq(body []byte) (path string, vars []string, err error) {
	d := dec{b: body}
	path = d.str()
	n := int(d.u16())
	for i := 0; i < n && d.err == nil; i++ {
		vars = append(vars, d.str())
	}
	if d.err != nil {
		return "", nil, fmt.Errorf("%w: fetch request: %v", ErrProtocol, d.err)
	}
	return path, vars, nil
}
