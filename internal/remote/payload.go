package remote

import (
	"fmt"
	"sort"
	"sync/atomic"

	"godiva/internal/genx"
	"godiva/internal/mesh"
	"godiva/internal/zerocopy"
)

// FilePayload is one snapshot file's unit payload: every block stored in the
// file with its mesh arrays and the requested variable fields — exactly what
// a local read function obtains from genx.FileHandle.ReadBlock, so records
// committed from it are byte-identical to local SHDF reads.
//
// Payloads returned by Client.FetchFile may be shared between coalesced
// callers and must be treated as read-only; commit callbacks copy field data
// into database buffers. On little-endian hosts the block arrays alias the
// response frame's buffer: call Recycle when done with the payload so the
// buffer returns to the frame pool, and touch nothing decoded from the
// payload afterwards.
type FilePayload struct {
	Path   string // request path, in the server's namespace
	Time   float64
	StepID string
	Blocks []*genx.BlockData

	// arena is the pooled response-frame buffer whose payload region the
	// block arrays alias; nil when the payload was not decoded from a
	// pooled frame. A batched response decodes several payloads from one
	// frame, so the arena is shared and refcounted separately. refs counts
	// the fetchers sharing this payload (the owner plus every coalesced
	// joiner); the last Recycle drops the payload's claim on the arena.
	arena *frameArena
	refs  atomic.Int32
}

// frameArena is one pooled response-frame buffer shared by every
// FilePayload decoded from it. refs counts those payloads; when the last
// one is fully recycled the buffer returns to the frame pool.
type frameArena struct {
	buf  []byte
	refs atomic.Int32
}

// release drops one payload's claim on the arena, pooling the buffer when
// it was the last.
func (a *frameArena) release() {
	if a.refs.Add(-1) == 0 {
		putFrameBuf(a.buf)
	}
}

// Recycle releases the caller's claim on the payload. Once every fetcher
// that received the payload (coalesced fetches share one) has called it,
// the backing frame buffer returns to the frame pool for reuse. After
// calling Recycle the caller must not touch the payload or any slice
// decoded from it — the memory may be overwritten by a later fetch.
// Payloads without pooled backing ignore Recycle.
func (fp *FilePayload) Recycle() {
	if fp.refs.Load() == 0 {
		return // not pool-backed
	}
	if fp.refs.Add(-1) > 0 {
		return
	}
	arena := fp.arena
	fp.arena = nil
	fp.Blocks = nil // fail fast on use-after-recycle
	arena.release()
}

// Bytes returns the payload's approximate data volume: the raw size of every
// mesh and field array it carries.
func (fp *FilePayload) Bytes() int64 {
	var n int64
	for _, bd := range fp.Blocks {
		if bd.Mesh != nil {
			n += int64(8*len(bd.Mesh.Coords) + 4*len(bd.Mesh.Tets) + 8*len(bd.Mesh.GlobalNode))
		}
		for _, v := range bd.Node {
			n += int64(8 * len(v))
		}
		for _, v := range bd.Elem {
			n += int64(8 * len(v))
		}
	}
	return n
}

// sortedKeys returns a map's keys in sorted order, for deterministic frames.
func sortedKeys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// segEnc builds a frame payload as a list of segments: meta chunks (scalars,
// strings, counts, alignment pads) interleaved with borrowed array segments
// that alias the caller's slices. The server hands the list to
// writeFrameBuffers, so array data goes from the dataset (often an mmap'd
// SHDF payload) to the socket without an intermediate assembly copy.
type segEnc struct {
	e      enc      // meta chunk under construction
	segs   [][]byte // finished segments, in payload order
	base   int      // payload bytes already flushed into segs
	copied int64    // array bytes encoded element-wise (no aliasing possible)
}

// flush closes the open meta chunk. Each chunk is a separately built slice:
// the encoder never appends to a chunk after flushing it, so a later append
// can never reallocate-and-move bytes a flushed segment points at.
func (s *segEnc) flush() {
	if len(s.e.b) > 0 {
		s.segs = append(s.segs, s.e.b)
		s.base += len(s.e.b)
		s.e.b = nil
	}
}

// borrow appends seg as a payload segment, aliasing the caller's memory.
func (s *segEnc) borrow(seg []byte) {
	s.flush()
	s.segs = append(s.segs, seg)
	s.base += len(seg)
}

// align8 zero-pads the payload to the next 8-byte offset.
func (s *segEnc) align8() {
	for (s.base+len(s.e.b))%8 != 0 {
		s.e.b = append(s.e.b, 0)
	}
}

// f64s encodes a float64 array: u32 count, pad to 8, then the elements —
// borrowed in place on little-endian hosts, copied element-wise otherwise.
func (s *segEnc) f64s(v []float64) {
	s.e.u32(uint32(len(v)))
	s.align8()
	if seg, ok := zerocopy.BytesOfF64s(v); ok {
		if len(seg) > 0 {
			s.borrow(seg)
		}
		return
	}
	for _, x := range v {
		s.e.f64(x)
	}
	s.copied += int64(8 * len(v))
}

func (s *segEnc) i32s(v []int32) {
	s.e.u32(uint32(len(v)))
	s.align8()
	if seg, ok := zerocopy.BytesOfI32s(v); ok {
		if len(seg) > 0 {
			s.borrow(seg)
		}
		return
	}
	for _, x := range v {
		s.e.u32(uint32(x))
	}
	s.copied += int64(4 * len(v))
}

func (s *segEnc) i64s(v []int64) {
	s.e.u32(uint32(len(v)))
	s.align8()
	if seg, ok := zerocopy.BytesOfI64s(v); ok {
		if len(seg) > 0 {
			s.borrow(seg)
		}
		return
	}
	for _, x := range v {
		s.e.u64(uint64(x))
	}
	s.copied += int64(8 * len(v))
}

// encodeFilePayloadSegments serializes a FilePayload as scattered frame
// segments:
//
//	f64 time | str stepID | u32 nblocks
//	per block: u32 id | str name
//	           u32 ncoords |pad| f64... | u32 ntets |pad| i32... |
//	           u32 ngids |pad| i64...
//	           u16 nnode  (per field: str name | u32 n |pad| f64...)
//	           u16 nelem  (per field: str name | u32 n |pad| f64...)
//
// Array segments alias fp's slices: the caller must keep their backing
// memory (e.g. the mmap'd snapshot file) alive and unwritten until the
// frame has been fully written. copied reports array bytes that could not
// be borrowed and were encoded element-wise. limit bounds the total payload
// size (the wire cap is maxFrame-2; tests pass smaller limits); exceeding
// it returns ErrFrameTooLarge before anything is sent.
func encodeFilePayloadSegments(fp *FilePayload, limit int) (segs [][]byte, copied int64, err error) {
	var s segEnc
	s.filePayload(fp)
	s.flush()
	if s.base > limit {
		return nil, 0, fmt.Errorf("%w (%d bytes, limit %d)", ErrFrameTooLarge, s.base, limit)
	}
	return s.segs, s.copied, nil
}

// filePayload appends fp's body to the payload under construction. The
// layout is position-independent — alignment pads are computed from the
// running payload offset — so the same body can follow a prefix (OpIngest
// requests put a path string first).
func (s *segEnc) filePayload(fp *FilePayload) {
	s.e.f64(fp.Time)
	s.e.str(fp.StepID)
	s.e.u32(uint32(len(fp.Blocks)))
	for _, bd := range fp.Blocks {
		s.e.u32(uint32(bd.ID))
		s.e.str(bd.Name)
		s.f64s(bd.Mesh.Coords)
		s.i32s(bd.Mesh.Tets)
		s.i64s(bd.Mesh.GlobalNode)
		s.e.u16(uint16(len(bd.Node)))
		for _, name := range sortedKeys(bd.Node) {
			s.e.str(name)
			s.f64s(bd.Node[name])
		}
		s.e.u16(uint16(len(bd.Elem)))
		for _, name := range sortedKeys(bd.Elem) {
			s.e.str(name)
			s.f64s(bd.Elem[name])
		}
	}
}

// decodeFilePayload parses an encoded FilePayload. When body sits 8-byte
// aligned in memory (response frames are read into such buffers) the block
// arrays alias it in place; copied reports the array bytes that were copied
// out instead.
func decodeFilePayload(body []byte) (fp *FilePayload, copied int64, err error) {
	d := dec{b: body}
	fp = d.filePayload()
	if d.err != nil {
		return nil, 0, fmt.Errorf("%w: file payload: %v", ErrProtocol, d.err)
	}
	return fp, d.copied, nil
}

// filePayload decodes a FilePayload body starting at the decoder's current
// offset (the inverse of segEnc.filePayload).
func (d *dec) filePayload() *FilePayload {
	fp := &FilePayload{Time: d.f64(), StepID: d.str()}
	nblocks := int(d.u32())
	for i := 0; i < nblocks && d.err == nil; i++ {
		bd := &genx.BlockData{
			ID:   int(d.u32()),
			Name: d.str(),
			Mesh: &mesh.TetMesh{},
			Node: make(map[string][]float64),
			Elem: make(map[string][]float64),
		}
		bd.Mesh.Coords = d.f64s()
		bd.Mesh.Tets = d.i32s()
		bd.Mesh.GlobalNode = d.i64s()
		nnode := int(d.u16())
		for j := 0; j < nnode && d.err == nil; j++ {
			bd.Node[d.str()] = d.f64s()
		}
		nelem := int(d.u16())
		for j := 0; j < nelem && d.err == nil; j++ {
			bd.Elem[d.str()] = d.f64s()
		}
		bd.Time = fp.Time
		bd.StepID = fp.StepID
		fp.Blocks = append(fp.Blocks, bd)
	}
	return fp
}

// encodeSpec serializes the dataset shape answered by OpSpec. The mesh
// geometry is not carried — remote readers need only the counts and the
// time step (genx.Discover recovers the same subset from local files).
func encodeSpec(s genx.Spec) []byte {
	var e enc
	e.u32(uint32(s.Snapshots))
	e.u32(uint32(s.FilesPerSnapshot))
	e.u32(uint32(s.Blocks))
	e.f64(s.DT)
	return e.b
}

// decodeSpec parses an OpSpec response.
func decodeSpec(body []byte) (genx.Spec, error) {
	d := dec{b: body}
	s := genx.Spec{
		Snapshots:        int(d.u32()),
		FilesPerSnapshot: int(d.u32()),
		Blocks:           int(d.u32()),
	}
	s.DT = d.f64()
	if d.err != nil {
		return genx.Spec{}, fmt.Errorf("%w: spec payload: %v", ErrProtocol, d.err)
	}
	return s, nil
}

// encodeFetchReq serializes an OpFetch request.
func encodeFetchReq(path string, vars []string) []byte {
	var e enc
	e.str(path)
	e.u16(uint16(len(vars)))
	for _, v := range vars {
		e.str(v)
	}
	return e.b
}

// decodeFetchReq parses an OpFetch request.
func decodeFetchReq(body []byte) (path string, vars []string, err error) {
	d := dec{b: body}
	path = d.str()
	n := int(d.u16())
	for i := 0; i < n && d.err == nil; i++ {
		vars = append(vars, d.str())
	}
	if d.err != nil {
		return "", nil, fmt.Errorf("%w: fetch request: %v", ErrProtocol, d.err)
	}
	return path, vars, nil
}
