package mesh

import "math"

// AnnulusSpec parameterizes the synthetic solid-propellant geometry: a
// cylindrical annulus (the propellant grain of a Titan-IV-class booster)
// discretized in radius, angle and length, with an optional star-shaped
// perforation on the inner bore like real grain cross sections.
type AnnulusSpec struct {
	NR, NTheta, NZ int     // elements per direction
	RInner, ROuter float64 // bore and case radii
	Length         float64
	StarPoints     int     // 0 for a circular bore
	StarDepth      float64 // fractional amplitude of the star perforation
}

// innerRadius returns the bore radius at angle theta.
func (s AnnulusSpec) innerRadius(theta float64) float64 {
	if s.StarPoints <= 0 || s.StarDepth == 0 {
		return s.RInner
	}
	return s.RInner * (1 - s.StarDepth*0.5*(1+math.Cos(float64(s.StarPoints)*theta)))
}

// GenerateAnnulus builds a tetrahedral mesh of the annulus by laying out a
// structured (NR+1) x NTheta x (NZ+1) grid of nodes and splitting each
// hexahedral cell into six consistently oriented tetrahedra.
func GenerateAnnulus(s AnnulusSpec) *TetMesh {
	nr, nt, nz := s.NR, s.NTheta, s.NZ
	nodesPerRing := (nr + 1) * nt
	numNodes := nodesPerRing * (nz + 1)
	m := &TetMesh{
		Coords: make([]float64, 0, 3*numNodes),
		Tets:   make([]int32, 0, 4*6*nr*nt*nz),
	}
	// node index: k*(nodesPerRing) + j*(nr+1) + i for z-layer k, angle j,
	// radial line i.
	for k := 0; k <= nz; k++ {
		z := s.Length * float64(k) / float64(nz)
		for j := 0; j < nt; j++ {
			theta := 2 * math.Pi * float64(j) / float64(nt)
			ri := s.innerRadius(theta)
			for i := 0; i <= nr; i++ {
				r := ri + (s.ROuter-ri)*float64(i)/float64(nr)
				m.Coords = append(m.Coords,
					r*math.Cos(theta), r*math.Sin(theta), z)
			}
		}
	}
	node := func(k, j, i int) int32 {
		j = (j + nt) % nt // periodic in theta
		return int32(k*nodesPerRing + j*(nr+1) + i)
	}
	// Split each hex (i..i+1, j..j+1, k..k+1) into 6 tets. The split uses
	// the standard Kuhn triangulation along the main diagonal v0-v6, which
	// yields consistently positive volumes for a positively oriented hex.
	for k := 0; k < nz; k++ {
		for j := 0; j < nt; j++ {
			for i := 0; i < nr; i++ {
				v := [8]int32{
					node(k, j, i),       // 0
					node(k, j, i+1),     // 1
					node(k, j+1, i+1),   // 2
					node(k, j+1, i),     // 3
					node(k+1, j, i),     // 4
					node(k+1, j, i+1),   // 5
					node(k+1, j+1, i+1), // 6
					node(k+1, j+1, i),   // 7
				}
				tets := [6][4]int{
					{0, 1, 2, 6},
					{0, 2, 3, 6},
					{0, 3, 7, 6},
					{0, 7, 4, 6},
					{0, 4, 5, 6},
					{0, 5, 1, 6},
				}
				for _, tt := range tets {
					m.Tets = append(m.Tets,
						v[tt[0]], v[tt[1]], v[tt[2]], v[tt[3]])
				}
			}
		}
	}
	return m
}

// Partition splits the mesh into nblocks blocks of contiguous element
// ranges (slabs along the element ordering, which for GenerateAnnulus means
// slabs along z). Boundary nodes shared between blocks are duplicated into
// each block, as in the paper's GENx datasets ("120 blocks, with a small
// amount of duplication of the boundary data"), and every block carries the
// global node IDs of its local nodes.
func (m *TetMesh) Partition(nblocks int) []*TetMesh {
	if nblocks < 1 {
		nblocks = 1
	}
	ncells := m.NumCells()
	blocks := make([]*TetMesh, 0, nblocks)
	for b := 0; b < nblocks; b++ {
		lo := ncells * b / nblocks
		hi := ncells * (b + 1) / nblocks
		blk := &TetMesh{}
		local := make(map[int32]int32)
		for e := lo; e < hi; e++ {
			c := m.Cell(e)
			for _, g := range c {
				li, ok := local[g]
				if !ok {
					li = int32(len(local))
					local[g] = li
					p := m.Node(g)
					blk.Coords = append(blk.Coords, p.X, p.Y, p.Z)
					blk.GlobalNode = append(blk.GlobalNode, int64(g))
				}
				blk.Tets = append(blk.Tets, li)
			}
		}
		blocks = append(blocks, blk)
	}
	return blocks
}
