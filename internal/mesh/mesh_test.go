package mesh

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// unitTet returns a single positively oriented tetrahedron of volume 1/6.
func unitTet() *TetMesh {
	return &TetMesh{
		Coords: []float64{
			0, 0, 0,
			1, 0, 0,
			0, 1, 0,
			0, 0, 1,
		},
		Tets: []int32{0, 1, 2, 3},
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); got != (Vec3{0, 0, 1}) {
		t.Fatalf("Cross = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
	if got := (Vec3{0, 0, 0}).Normalize(); got != (Vec3{}) {
		t.Fatalf("Normalize(0) = %v", got)
	}
	if got := (Vec3{0, 3, 0}).Normalize(); got != (Vec3{0, 1, 0}) {
		t.Fatalf("Normalize = %v", got)
	}
}

func TestUnitTetBasics(t *testing.T) {
	m := unitTet()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 4 || m.NumCells() != 1 {
		t.Fatalf("NumNodes/NumCells = %d/%d", m.NumNodes(), m.NumCells())
	}
	if v := m.CellVolume(0); math.Abs(v-1.0/6) > 1e-12 {
		t.Fatalf("CellVolume = %v, want 1/6", v)
	}
	c := m.CellCentroid(0)
	if math.Abs(c.X-0.25) > 1e-12 || math.Abs(c.Y-0.25) > 1e-12 || math.Abs(c.Z-0.25) > 1e-12 {
		t.Fatalf("centroid = %v", c)
	}
	lo, hi := m.Bounds()
	if lo != (Vec3{0, 0, 0}) || hi != (Vec3{1, 1, 1}) {
		t.Fatalf("bounds = %v %v", lo, hi)
	}
	faces := m.BoundaryFaces()
	if len(faces) != 4 {
		t.Fatalf("single tet has %d boundary faces, want 4", len(faces))
	}
}

func TestValidateCatchesBadMeshes(t *testing.T) {
	m := unitTet()
	m.Coords = m.Coords[:11] // not a multiple of 3
	if err := m.Validate(); !errors.Is(err, ErrBadMesh) {
		t.Fatalf("bad coords: %v", err)
	}

	m = unitTet()
	m.Tets = []int32{0, 1, 2} // not a multiple of 4
	if err := m.Validate(); !errors.Is(err, ErrBadMesh) {
		t.Fatalf("bad connectivity: %v", err)
	}

	m = unitTet()
	m.Tets[3] = 99 // out of range
	if err := m.Validate(); !errors.Is(err, ErrBadMesh) {
		t.Fatalf("index out of range: %v", err)
	}

	m = unitTet()
	m.Tets[0], m.Tets[1] = m.Tets[1], m.Tets[0] // inverted element
	if err := m.Validate(); !errors.Is(err, ErrBadMesh) {
		t.Fatalf("negative volume: %v", err)
	}

	m = unitTet()
	m.GlobalNode = []int64{1, 2} // wrong length
	if err := m.Validate(); !errors.Is(err, ErrBadMesh) {
		t.Fatalf("bad global IDs: %v", err)
	}
}

func TestBoundaryFacesOutwardOrientation(t *testing.T) {
	m := unitTet()
	centroid := m.CellCentroid(0)
	for _, f := range m.BoundaryFaces() {
		a, b, c := m.Node(f[0]), m.Node(f[1]), m.Node(f[2])
		n := b.Sub(a).Cross(c.Sub(a))
		faceCenter := a.Add(b).Add(c).Scale(1.0 / 3)
		if n.Dot(faceCenter.Sub(centroid)) <= 0 {
			t.Fatalf("face %v normal points inward", f)
		}
	}
}

func TestTwoTetsShareInteriorFace(t *testing.T) {
	// Two tets glued on face (1,2,3): 6 external faces, 1 interior.
	m := &TetMesh{
		Coords: []float64{
			0, 0, 0,
			1, 0, 0,
			0, 1, 0,
			0, 0, 1,
			1, 1, 1,
		},
		Tets: []int32{
			0, 1, 2, 3,
			1, 2, 3, 4, // wrong orientation is fine for face counting
		},
	}
	faces := m.BoundaryFaces()
	if len(faces) != 6 {
		t.Fatalf("got %d boundary faces, want 6", len(faces))
	}
	for _, f := range faces {
		if makeFaceKey(f[0], f[1], f[2]) == makeFaceKey(1, 2, 3) {
			t.Fatal("interior face reported as boundary")
		}
	}
}

func defaultAnnulus() AnnulusSpec {
	return AnnulusSpec{
		NR: 2, NTheta: 12, NZ: 4,
		RInner: 0.5, ROuter: 1.0, Length: 3.0,
	}
}

func TestGenerateAnnulusValid(t *testing.T) {
	s := defaultAnnulus()
	m := GenerateAnnulus(s)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	wantNodes := (s.NR + 1) * s.NTheta * (s.NZ + 1)
	wantCells := 6 * s.NR * s.NTheta * s.NZ
	if m.NumNodes() != wantNodes || m.NumCells() != wantCells {
		t.Fatalf("nodes/cells = %d/%d, want %d/%d", m.NumNodes(), m.NumCells(), wantNodes, wantCells)
	}
}

func TestAnnulusVolumeMatchesAnalytic(t *testing.T) {
	s := AnnulusSpec{NR: 3, NTheta: 64, NZ: 6, RInner: 0.5, ROuter: 1.0, Length: 2.0}
	m := GenerateAnnulus(s)
	got := m.TotalVolume()
	want := math.Pi * (s.ROuter*s.ROuter - s.RInner*s.RInner) * s.Length
	// The faceted annulus underestimates the circular one; 64 angular
	// divisions put the discretization error well under 1 %.
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("volume = %v, analytic %v (err %.2f%%)", got, want, 100*math.Abs(got-want)/want)
	}
}

func TestStarBoreShrinksVolume(t *testing.T) {
	base := AnnulusSpec{NR: 2, NTheta: 48, NZ: 4, RInner: 0.5, ROuter: 1.0, Length: 2.0}
	star := base
	star.StarPoints = 7
	star.StarDepth = 0.3
	vBase := GenerateAnnulus(base).TotalVolume()
	vStar := GenerateAnnulus(star).TotalVolume()
	if vStar <= vBase {
		t.Fatalf("star perforation did not increase propellant volume: %v vs %v", vStar, vBase)
	}
	if err := GenerateAnnulus(star).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnnulusSurfaceIsClosed(t *testing.T) {
	m := GenerateAnnulus(defaultAnnulus())
	faces := m.BoundaryFaces()
	// A closed surface has every edge shared by exactly two faces.
	edges := map[[2]int32]int{}
	for _, f := range faces {
		for i := 0; i < 3; i++ {
			a, b := f[i], f[(i+1)%3]
			if a > b {
				a, b = b, a
			}
			edges[[2]int32{a, b}]++
		}
	}
	for e, n := range edges {
		if n != 2 {
			t.Fatalf("edge %v belongs to %d boundary faces, want 2", e, n)
		}
	}
}

func TestPartitionCoversAllCells(t *testing.T) {
	m := GenerateAnnulus(defaultAnnulus())
	blocks := m.Partition(7)
	if len(blocks) != 7 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	total := 0
	var vol float64
	for i, b := range blocks {
		if err := b.Validate(); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if b.GlobalNode == nil {
			t.Fatalf("block %d has no global node IDs", i)
		}
		total += b.NumCells()
		vol += b.TotalVolume()
	}
	if total != m.NumCells() {
		t.Fatalf("blocks hold %d cells, mesh has %d", total, m.NumCells())
	}
	if math.Abs(vol-m.TotalVolume()) > 1e-9 {
		t.Fatalf("block volumes sum to %v, mesh volume %v", vol, m.TotalVolume())
	}
}

func TestPartitionDuplicatesBoundaryNodes(t *testing.T) {
	m := GenerateAnnulus(defaultAnnulus())
	blocks := m.Partition(4)
	sum := 0
	for _, b := range blocks {
		sum += b.NumNodes()
	}
	if sum <= m.NumNodes() {
		t.Fatalf("partition did not duplicate boundary nodes: %d <= %d", sum, m.NumNodes())
	}
	// Global IDs must point back at identical coordinates.
	for bi, b := range blocks {
		for li := 0; li < b.NumNodes(); li++ {
			g := b.GlobalNode[li]
			pl := b.Node(int32(li))
			pg := m.Node(int32(g))
			if pl != pg {
				t.Fatalf("block %d node %d: coords %v != global %v", bi, li, pl, pg)
			}
		}
	}
}

func TestPartitionSingleBlockIsWhole(t *testing.T) {
	m := GenerateAnnulus(defaultAnnulus())
	blocks := m.Partition(1)
	if len(blocks) != 1 || blocks[0].NumCells() != m.NumCells() || blocks[0].NumNodes() != m.NumNodes() {
		t.Fatalf("1-block partition: %d cells %d nodes", blocks[0].NumCells(), blocks[0].NumNodes())
	}
	if got := m.Partition(0); len(got) != 1 {
		t.Fatalf("Partition(0) gave %d blocks", len(got))
	}
}

func TestStructuredBlock2D(t *testing.T) {
	b := UniformBlock2D(100, 100, 0, 1, 0, 2)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.XCoords) != 101 || len(b.YCoords) != 101 {
		t.Fatalf("coords = %d/%d, want 101/101 (paper Figure 2)", len(b.XCoords), len(b.YCoords))
	}
	if b.NumElements() != 10000 {
		t.Fatalf("NumElements = %d, want 10000", b.NumElements())
	}
	bad := &StructuredBlock2D{NX: 2, NY: 2, XCoords: []float64{0, 1, 0.5}, YCoords: []float64{0, 1, 2}}
	if err := bad.Validate(); !errors.Is(err, ErrBadMesh) {
		t.Fatalf("non-increasing coords: %v", err)
	}
	short := &StructuredBlock2D{NX: 2, NY: 2, XCoords: []float64{0, 1}, YCoords: []float64{0, 1, 2}}
	if err := short.Validate(); !errors.Is(err, ErrBadMesh) {
		t.Fatalf("short coords: %v", err)
	}
}

// Property: any annulus spec within sane ranges produces a valid mesh whose
// partition preserves cells and volume.
func TestQuickAnnulusPartition(t *testing.T) {
	f := func(nr, nt, nz, nb uint8) bool {
		s := AnnulusSpec{
			NR:     int(nr)%3 + 1,
			NTheta: int(nt)%10 + 3,
			NZ:     int(nz)%4 + 1,
			RInner: 0.4, ROuter: 1.1, Length: 2,
		}
		m := GenerateAnnulus(s)
		if m.Validate() != nil {
			return false
		}
		blocks := m.Partition(int(nb)%6 + 1)
		cells := 0
		var vol float64
		for _, b := range blocks {
			if b.Validate() != nil {
				return false
			}
			cells += b.NumCells()
			vol += b.TotalVolume()
		}
		return cells == m.NumCells() && math.Abs(vol-m.TotalVolume()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
