package mesh

import "fmt"

// StructuredGrid3D is a curvilinear structured grid: an NI x NJ x NK block
// of hexahedral cells whose (NI+1)(NJ+1)(NK+1) grid points carry explicit
// coordinates — the "non-uniform, structured" grids Rocketeer handles
// alongside unstructured ones. The tetrahedral pipeline consumes it through
// Tetrahedralize.
type StructuredGrid3D struct {
	NI, NJ, NK int
	// Coords holds x,y,z per grid point, point (i,j,k) at index
	// ((k*(NJ+1)+j)*(NI+1)+i).
	Coords []float64
}

// NumPoints returns the grid point count.
func (g *StructuredGrid3D) NumPoints() int {
	return (g.NI + 1) * (g.NJ + 1) * (g.NK + 1)
}

// NumCells returns the hexahedral cell count.
func (g *StructuredGrid3D) NumCells() int { return g.NI * g.NJ * g.NK }

// PointIndex returns the flat index of grid point (i,j,k).
func (g *StructuredGrid3D) PointIndex(i, j, k int) int32 {
	return int32((k*(g.NJ+1)+j)*(g.NI+1) + i)
}

// Point returns grid point (i,j,k).
func (g *StructuredGrid3D) Point(i, j, k int) Vec3 {
	p := 3 * g.PointIndex(i, j, k)
	return Vec3{X: g.Coords[p], Y: g.Coords[p+1], Z: g.Coords[p+2]}
}

// Validate checks the coordinate array length and that every cell has
// positive volume under the Kuhn tetrahedralization.
func (g *StructuredGrid3D) Validate() error {
	if g.NI < 1 || g.NJ < 1 || g.NK < 1 {
		return fmt.Errorf("%w: grid extent %dx%dx%d", ErrBadMesh, g.NI, g.NJ, g.NK)
	}
	if len(g.Coords) != 3*g.NumPoints() {
		return fmt.Errorf("%w: %d coordinates for %d points", ErrBadMesh, len(g.Coords), g.NumPoints())
	}
	m := g.Tetrahedralize()
	return m.Validate()
}

// Tetrahedralize splits every hex cell into six tetrahedra along its main
// diagonal (the same Kuhn split GenerateAnnulus uses), producing a TetMesh
// that shares the grid's point ordering, so node-based fields carry over
// index-for-index.
func (g *StructuredGrid3D) Tetrahedralize() *TetMesh {
	m := &TetMesh{
		Coords: g.Coords,
		Tets:   make([]int32, 0, 4*6*g.NumCells()),
	}
	for k := 0; k < g.NK; k++ {
		for j := 0; j < g.NJ; j++ {
			for i := 0; i < g.NI; i++ {
				v := [8]int32{
					g.PointIndex(i, j, k),
					g.PointIndex(i+1, j, k),
					g.PointIndex(i+1, j+1, k),
					g.PointIndex(i, j+1, k),
					g.PointIndex(i, j, k+1),
					g.PointIndex(i+1, j, k+1),
					g.PointIndex(i+1, j+1, k+1),
					g.PointIndex(i, j+1, k+1),
				}
				tets := [6][4]int{
					{0, 1, 2, 6},
					{0, 2, 3, 6},
					{0, 3, 7, 6},
					{0, 7, 4, 6},
					{0, 4, 5, 6},
					{0, 5, 1, 6},
				}
				for _, tt := range tets {
					m.Tets = append(m.Tets, v[tt[0]], v[tt[1]], v[tt[2]], v[tt[3]])
				}
			}
		}
	}
	return m
}

// CurvilinearGrid builds a structured grid by evaluating a mapping from
// unit-cube parameters (u,v,w in [0,1]) to physical space — e.g. a
// stretched, sheared or annular block.
func CurvilinearGrid(ni, nj, nk int, f func(u, v, w float64) Vec3) *StructuredGrid3D {
	g := &StructuredGrid3D{NI: ni, NJ: nj, NK: nk}
	g.Coords = make([]float64, 0, 3*g.NumPoints())
	for k := 0; k <= nk; k++ {
		w := float64(k) / float64(nk)
		for j := 0; j <= nj; j++ {
			v := float64(j) / float64(nj)
			for i := 0; i <= ni; i++ {
				u := float64(i) / float64(ni)
				p := f(u, v, w)
				g.Coords = append(g.Coords, p.X, p.Y, p.Z)
			}
		}
	}
	return g
}
