// Package mesh provides the mesh data model of the reproduction: structured
// 2-D blocks (the paper's Table 1 fluid example) and unstructured
// tetrahedral meshes (the GENx solid-propellant datasets of §4), plus the
// geometric operations the visualization pipeline builds on — surface
// extraction, partitioning into blocks with duplicated boundary data, and
// element quality/volume measures.
package mesh

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the package.
var (
	ErrBadMesh = errors.New("mesh: invalid mesh")
)

// Vec3 is a 3-D point or vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v/|v|, or the zero vector if |v| is zero.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// TetMesh is an unstructured tetrahedral mesh: flat coordinate and
// connectivity arrays in the style scientific codes use (paper §1: data
// "managed … in a straight forward manner as arrays").
type TetMesh struct {
	// Coords holds x,y,z triples: node i is Coords[3i:3i+3].
	Coords []float64
	// Tets holds node-index quadruples: element e is Tets[4e:4e+4].
	Tets []int32
	// GlobalNode maps local node index to a global node ID; nil for meshes
	// that are not partition blocks. Partition blocks duplicate boundary
	// nodes, so distinct blocks can map different local nodes to the same
	// global ID.
	GlobalNode []int64
}

// NumNodes returns the node count.
func (m *TetMesh) NumNodes() int { return len(m.Coords) / 3 }

// NumCells returns the element (tetrahedron) count.
func (m *TetMesh) NumCells() int { return len(m.Tets) / 4 }

// Node returns node i's position.
func (m *TetMesh) Node(i int32) Vec3 {
	return Vec3{m.Coords[3*i], m.Coords[3*i+1], m.Coords[3*i+2]}
}

// Cell returns element e's four node indices.
func (m *TetMesh) Cell(e int) [4]int32 {
	return [4]int32{m.Tets[4*e], m.Tets[4*e+1], m.Tets[4*e+2], m.Tets[4*e+3]}
}

// Validate checks structural invariants: coordinate and connectivity array
// lengths, node indices in range, and non-degenerate (positive-volume)
// elements.
func (m *TetMesh) Validate() error {
	if len(m.Coords)%3 != 0 {
		return fmt.Errorf("%w: %d coordinates is not a multiple of 3", ErrBadMesh, len(m.Coords))
	}
	if len(m.Tets)%4 != 0 {
		return fmt.Errorf("%w: %d connectivity entries is not a multiple of 4", ErrBadMesh, len(m.Tets))
	}
	if m.GlobalNode != nil && len(m.GlobalNode) != m.NumNodes() {
		return fmt.Errorf("%w: %d global IDs for %d nodes", ErrBadMesh, len(m.GlobalNode), m.NumNodes())
	}
	n := int32(m.NumNodes())
	for i, idx := range m.Tets {
		if idx < 0 || idx >= n {
			return fmt.Errorf("%w: connectivity[%d] = %d out of range [0,%d)", ErrBadMesh, i, idx, n)
		}
	}
	for e := 0; e < m.NumCells(); e++ {
		if m.CellVolume(e) <= 0 {
			return fmt.Errorf("%w: element %d has non-positive volume", ErrBadMesh, e)
		}
	}
	return nil
}

// CellVolume returns the signed volume of element e (positive for
// consistently oriented tets).
func (m *TetMesh) CellVolume(e int) float64 {
	c := m.Cell(e)
	a := m.Node(c[0])
	ab := m.Node(c[1]).Sub(a)
	ac := m.Node(c[2]).Sub(a)
	ad := m.Node(c[3]).Sub(a)
	return ab.Cross(ac).Dot(ad) / 6
}

// TotalVolume returns the sum of element volumes.
func (m *TetMesh) TotalVolume() float64 {
	var v float64
	for e := 0; e < m.NumCells(); e++ {
		v += m.CellVolume(e)
	}
	return v
}

// CellCentroid returns the centroid of element e.
func (m *TetMesh) CellCentroid(e int) Vec3 {
	c := m.Cell(e)
	p := m.Node(c[0]).Add(m.Node(c[1])).Add(m.Node(c[2])).Add(m.Node(c[3]))
	return p.Scale(0.25)
}

// Bounds returns the axis-aligned bounding box (min, max). An empty mesh
// returns zero vectors.
func (m *TetMesh) Bounds() (lo, hi Vec3) {
	if m.NumNodes() == 0 {
		return Vec3{}, Vec3{}
	}
	lo = m.Node(0)
	hi = lo
	for i := 1; i < m.NumNodes(); i++ {
		p := m.Node(int32(i))
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		lo.Z = math.Min(lo.Z, p.Z)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
		hi.Z = math.Max(hi.Z, p.Z)
	}
	return lo, hi
}

// tetFaces lists each tet face with outward orientation (nodes ordered so
// the right-hand normal points out of the element).
var tetFaces = [4][3]int{{0, 2, 1}, {0, 1, 3}, {1, 2, 3}, {0, 3, 2}}

// faceKey canonicalizes a face's node set for matching interior faces.
type faceKey [3]int32

func makeFaceKey(a, b, c int32) faceKey {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return faceKey{a, b, c}
}

// BoundaryFaces returns the triangles of the mesh's external surface, with
// outward orientation, as node-index triples. A face is external when it
// belongs to exactly one element.
func (m *TetMesh) BoundaryFaces() [][3]int32 {
	count := make(map[faceKey]int, m.NumCells()*2)
	first := make(map[faceKey][3]int32, m.NumCells()*2)
	for e := 0; e < m.NumCells(); e++ {
		c := m.Cell(e)
		for _, f := range tetFaces {
			tri := [3]int32{c[f[0]], c[f[1]], c[f[2]]}
			k := makeFaceKey(tri[0], tri[1], tri[2])
			count[k]++
			if count[k] == 1 {
				first[k] = tri
			}
		}
	}
	var out [][3]int32
	for e := 0; e < m.NumCells(); e++ {
		c := m.Cell(e)
		for _, f := range tetFaces {
			tri := [3]int32{c[f[0]], c[f[1]], c[f[2]]}
			k := makeFaceKey(tri[0], tri[1], tri[2])
			if count[k] == 1 {
				out = append(out, first[k])
				count[k] = 0 // emit once
			}
		}
	}
	return out
}

// StructuredBlock2D is the paper's Table 1 dataset: a structured 2-D mesh
// block with per-direction coordinate arrays and element-based variables.
// A block with NX x NY elements has NX+1 x NY+1 grid points.
type StructuredBlock2D struct {
	NX, NY int
	// XCoords and YCoords hold NX+1 and NY+1 grid-line coordinates.
	XCoords, YCoords []float64
}

// NumElements returns NX*NY.
func (b *StructuredBlock2D) NumElements() int { return b.NX * b.NY }

// Validate checks the coordinate arrays match the declared extent and are
// strictly increasing.
func (b *StructuredBlock2D) Validate() error {
	if len(b.XCoords) != b.NX+1 || len(b.YCoords) != b.NY+1 {
		return fmt.Errorf("%w: %dx%d block with %d/%d coordinates",
			ErrBadMesh, b.NX, b.NY, len(b.XCoords), len(b.YCoords))
	}
	for i := 1; i < len(b.XCoords); i++ {
		if b.XCoords[i] <= b.XCoords[i-1] {
			return fmt.Errorf("%w: x coordinates not increasing at %d", ErrBadMesh, i)
		}
	}
	for i := 1; i < len(b.YCoords); i++ {
		if b.YCoords[i] <= b.YCoords[i-1] {
			return fmt.Errorf("%w: y coordinates not increasing at %d", ErrBadMesh, i)
		}
	}
	return nil
}

// UniformBlock2D builds an NX x NY block spanning [x0,x1] x [y0,y1].
func UniformBlock2D(nx, ny int, x0, x1, y0, y1 float64) *StructuredBlock2D {
	b := &StructuredBlock2D{NX: nx, NY: ny,
		XCoords: make([]float64, nx+1), YCoords: make([]float64, ny+1)}
	for i := 0; i <= nx; i++ {
		b.XCoords[i] = x0 + (x1-x0)*float64(i)/float64(nx)
	}
	for j := 0; j <= ny; j++ {
		b.YCoords[j] = y0 + (y1-y0)*float64(j)/float64(ny)
	}
	return b
}
