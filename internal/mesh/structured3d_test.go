package mesh

import (
	"math"
	"testing"
)

// unitBox returns a uniform ni x nj x nk grid of the unit cube.
func unitBox(ni, nj, nk int) *StructuredGrid3D {
	return CurvilinearGrid(ni, nj, nk, func(u, v, w float64) Vec3 {
		return Vec3{X: u, Y: v, Z: w}
	})
}

func TestStructuredGridBasics(t *testing.T) {
	g := unitBox(3, 2, 4)
	if g.NumPoints() != 4*3*5 || g.NumCells() != 3*2*4 {
		t.Fatalf("points %d cells %d", g.NumPoints(), g.NumCells())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if p := g.Point(3, 2, 4); p != (Vec3{X: 1, Y: 1, Z: 1}) {
		t.Fatalf("corner point = %v", p)
	}
	if p := g.Point(0, 0, 0); p != (Vec3{}) {
		t.Fatalf("origin = %v", p)
	}
}

func TestTetrahedralizeVolume(t *testing.T) {
	g := unitBox(4, 4, 4)
	m := g.Tetrahedralize()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 6*g.NumCells() {
		t.Fatalf("%d tets from %d hexes", m.NumCells(), g.NumCells())
	}
	if m.NumNodes() != g.NumPoints() {
		t.Fatalf("tet mesh has %d nodes, grid %d points", m.NumNodes(), g.NumPoints())
	}
	if v := m.TotalVolume(); math.Abs(v-1) > 1e-12 {
		t.Fatalf("unit cube volume = %v", v)
	}
}

func TestCurvilinearSheared(t *testing.T) {
	// A sheared, stretched block still tetrahedralizes with positive
	// volumes and the analytically correct total.
	g := CurvilinearGrid(5, 3, 2, func(u, v, w float64) Vec3 {
		return Vec3{X: 2*u + 0.3*v, Y: v, Z: 0.5*w + 0.1*u}
	})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m := g.Tetrahedralize()
	// Volume of the linear map of the unit cube = |det| = 2*1*0.5.
	if v := m.TotalVolume(); math.Abs(v-1.0) > 1e-9 {
		t.Fatalf("sheared volume = %v, want 1", v)
	}
}

func TestStructuredGridValidation(t *testing.T) {
	g := unitBox(2, 2, 2)
	g.Coords = g.Coords[:10]
	if err := g.Validate(); err == nil {
		t.Fatal("short coords accepted")
	}
	bad := &StructuredGrid3D{NI: 0, NJ: 1, NK: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero extent accepted")
	}
	// An inverted cell (negative Jacobian) must fail validation.
	inv := CurvilinearGrid(2, 2, 2, func(u, v, w float64) Vec3 {
		return Vec3{X: -u, Y: v, Z: w}
	})
	if err := inv.Validate(); err == nil {
		t.Fatal("inverted grid accepted")
	}
}

// Node fields carry over index-for-index: interpolate z over the tet mesh
// and compare with the grid points.
func TestFieldCarriesOver(t *testing.T) {
	g := unitBox(3, 3, 3)
	m := g.Tetrahedralize()
	field := make([]float64, m.NumNodes())
	for i := 0; i < m.NumNodes(); i++ {
		field[i] = m.Node(int32(i)).Z
	}
	for k := 0; k <= 3; k++ {
		want := float64(k) / 3
		if got := field[g.PointIndex(1, 2, k)]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("field at layer %d = %v, want %v", k, got, want)
		}
	}
}
