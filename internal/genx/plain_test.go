package genx

import (
	"math"
	"testing"
)

func TestPlainRoundTripMatchesSHDF(t *testing.T) {
	spec := tinySpec()
	dir := t.TempDir()
	if _, err := WriteDataset(spec, dir); err != nil {
		t.Fatal(err)
	}
	plainDir := t.TempDir()
	if _, err := WritePlainDataset(spec, plainDir); err != nil {
		t.Fatal(err)
	}
	r := &Reader{}
	sh, err := r.Open(SnapshotFile(dir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	pl, err := r.OpenPlain(PlainSnapshotFile(plainDir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Blocks()) != len(sh.Blocks()) {
		t.Fatalf("plain file has %d blocks, SHDF %d", len(pl.Blocks()), len(sh.Blocks()))
	}
	for i, e := range sh.Blocks() {
		b := pl.Blocks()[i]
		if b != e.ID {
			t.Fatalf("block order differs: %d vs %d", b, e.ID)
		}
		wantMesh, err := sh.ReadMesh(e)
		if err != nil {
			t.Fatal(err)
		}
		gotMesh, err := pl.ReadMesh(b)
		if err != nil {
			t.Fatal(err)
		}
		if gotMesh.NumNodes() != wantMesh.NumNodes() || gotMesh.NumCells() != wantMesh.NumCells() {
			t.Fatalf("block %d: mesh %d/%d vs %d/%d", b,
				gotMesh.NumNodes(), gotMesh.NumCells(), wantMesh.NumNodes(), wantMesh.NumCells())
		}
		for j := range wantMesh.Coords {
			if gotMesh.Coords[j] != wantMesh.Coords[j] {
				t.Fatalf("block %d coords[%d] differ", b, j)
			}
		}
		for j := range wantMesh.Tets {
			if gotMesh.Tets[j] != wantMesh.Tets[j] {
				t.Fatalf("block %d conn[%d] differ", b, j)
			}
		}
		for _, field := range []string{"velocity", "stress_avg", "temperature"} {
			want, err := sh.ReadField(e, field)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pl.ReadField(b, field)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("block %d %s: %d vs %d values", b, field, len(got), len(want))
			}
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("block %d %s[%d]: %v vs %v", b, field, j, got[j], want[j])
				}
			}
		}
	}
}

func TestPlainErrors(t *testing.T) {
	spec := tinySpec()
	plainDir := t.TempDir()
	if _, err := WritePlainDataset(spec, plainDir); err != nil {
		t.Fatal(err)
	}
	r := &Reader{}
	h, err := r.OpenPlain(PlainSnapshotFile(plainDir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReadField(0, "no_such"); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := h.ReadMesh(999); err == nil {
		t.Fatal("unknown block accepted")
	}
	if _, err := r.OpenPlain(PlainSnapshotFile(plainDir, 99, 0)); err == nil {
		t.Fatal("missing file accepted")
	}
}
