package genx

import (
	"math"
	"os"
	"testing"
	"time"

	"godiva/internal/mesh"
	"godiva/internal/platform"
)

// tinySpec is a fast dataset for tests: 2 snapshots, 4 blocks, 2 files.
func tinySpec() Spec {
	return Spec{
		Mesh: mesh.AnnulusSpec{
			NR: 2, NTheta: 8, NZ: 4,
			RInner: 0.6, ROuter: 1.55, Length: 4,
		},
		Blocks:           4,
		Snapshots:        2,
		FilesPerSnapshot: 2,
		DT:               2.5e-5,
	}
}

func writeTiny(t *testing.T) (Spec, string, []*mesh.TetMesh) {
	t.Helper()
	spec := tinySpec()
	dir := t.TempDir()
	blocks, err := WriteDataset(spec, dir)
	if err != nil {
		t.Fatal(err)
	}
	return spec, dir, blocks
}

func TestWriteDatasetCreatesAllFiles(t *testing.T) {
	spec, dir, blocks := writeTiny(t)
	if len(blocks) != spec.Blocks {
		t.Fatalf("got %d blocks, want %d", len(blocks), spec.Blocks)
	}
	for step := 0; step < spec.Snapshots; step++ {
		for _, path := range spec.SnapshotFiles(dir, step) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatalf("missing snapshot file: %v", err)
			}
			if st.Size() == 0 {
				t.Fatalf("empty snapshot file %s", path)
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	spec, dir, blocks := writeTiny(t)
	r := &Reader{}
	h, err := r.Open(SnapshotFile(dir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if h.Time != spec.DT {
		t.Fatalf("time attr = %v, want %v", h.Time, spec.DT)
	}
	if h.StepID != "0.000025" {
		t.Fatalf("step_id = %q, want 0.000025 (the paper's first step)", h.StepID)
	}
	entries := h.Blocks()
	// Blocks are dealt round-robin: file 0 of 2 holds blocks 0 and 2.
	if len(entries) != 2 || entries[0].ID != 0 || entries[1].ID != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	bd, err := h.ReadBlock(entries[0], []string{"velocity", "stress_avg"})
	if err != nil {
		t.Fatal(err)
	}
	want := blocks[0]
	if bd.Mesh.NumNodes() != want.NumNodes() || bd.Mesh.NumCells() != want.NumCells() {
		t.Fatalf("mesh %d/%d, want %d/%d",
			bd.Mesh.NumNodes(), bd.Mesh.NumCells(), want.NumNodes(), want.NumCells())
	}
	if err := bd.Mesh.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range want.Coords {
		if bd.Mesh.Coords[i] != want.Coords[i] {
			t.Fatalf("coords[%d] = %v, want %v", i, bd.Mesh.Coords[i], want.Coords[i])
		}
	}
	if len(bd.Node["velocity"]) != 3*want.NumNodes() {
		t.Fatalf("velocity has %d values", len(bd.Node["velocity"]))
	}
	if len(bd.Elem["stress_avg"]) != want.NumCells() {
		t.Fatalf("stress_avg has %d values", len(bd.Elem["stress_avg"]))
	}
	// Values must match the analytic fields.
	v := bd.Node["velocity"]
	x, y, z := NodeVector("velocity", want.Node(0), spec.DT)
	if v[0] != x || v[1] != y || v[2] != z {
		t.Fatalf("velocity[0] = (%v,%v,%v), want (%v,%v,%v)", v[0], v[1], v[2], x, y, z)
	}
	s := bd.Elem["stress_avg"]
	if got, want := s[0], ElemScalar("stress_avg", want.CellCentroid(0), spec.DT); got != want {
		t.Fatalf("stress_avg[0] = %v, want %v", got, want)
	}
}

func TestReadFieldErrors(t *testing.T) {
	_, dir, _ := writeTiny(t)
	r := &Reader{}
	h, err := r.Open(SnapshotFile(dir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	e := h.Blocks()[0]
	if _, err := h.ReadField(e, "no_such_field"); err == nil {
		t.Fatal("ReadField of unknown field succeeded")
	}
	if _, err := h.ReadBlock(e, []string{"conn"}); err == nil {
		t.Fatal("ReadBlock with a non-variable field succeeded")
	}
}

func TestSnapshotsEvolveInTime(t *testing.T) {
	spec, dir, _ := writeTiny(t)
	r := &Reader{}
	read := func(step int) []float64 {
		h, err := r.Open(SnapshotFile(dir, step, 0))
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		s, err := h.ReadField(h.Blocks()[0], "stress_avg")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if spec.Snapshots < 2 {
		t.Fatalf("writeTiny produced %d snapshots; need at least 2", spec.Snapshots)
	}
	s0 := read(0)
	s1 := read(1)
	diff := 0.0
	for i := range s0 {
		diff += math.Abs(s1[i] - s0[i])
	}
	if diff == 0 {
		t.Fatal("stress field identical across snapshots; time evolution missing")
	}
}

func TestReaderChargesPlatform(t *testing.T) {
	_, dir, _ := writeTiny(t)
	m := platform.New(platform.Spec{
		Name: "fast", NumCPU: 2, CPUSpeed: 1, RenderSpeed: 1,
		DiskBandwidth: 1e12, DiskSeek: 0, DiskOpen: 0,
		DecodeRate: 1e12, Quantum: time.Millisecond,
	}, 0.001)
	r := &Reader{M: m}
	h, err := r.Open(SnapshotFile(dir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.ReadBlock(h.Blocks()[0], []string{"velocity"}); err != nil {
		t.Fatal(err)
	}
	d := m.Disk()
	if d.Opens != 1 {
		t.Fatalf("Opens = %d, want 1", d.Opens)
	}
	if d.Bytes == 0 {
		t.Fatal("no bytes charged to the platform disk")
	}
	if m.CPUBusy() == 0 {
		t.Fatal("no decode CPU charged")
	}
}

// Sequential reads of a block's fields in file order must not charge seeks
// beyond the initial positioning; re-reading an earlier field must.
func TestSeekCharging(t *testing.T) {
	_, dir, _ := writeTiny(t)
	m := platform.New(platform.Spec{
		Name: "fast", NumCPU: 1, CPUSpeed: 1, RenderSpeed: 1,
		DiskBandwidth: 1e12, DiskSeek: 0, DiskOpen: 0,
		DecodeRate: 1e12, Quantum: time.Millisecond,
	}, 0.001)
	r := &Reader{M: m}
	h, err := r.Open(SnapshotFile(dir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	e := h.Blocks()[0]
	if _, err := h.ReadMesh(e); err != nil {
		t.Fatal(err)
	}
	seq := m.Disk().Seeks
	// coords..gids are contiguous: at most the initial seek.
	if seq > 2 {
		t.Fatalf("sequential mesh read charged %d seeks", seq)
	}
	// Going back to coords is a seek, and the following conn read, now
	// sequential again, is not.
	if _, err := h.ReadField(e, "coords"); err != nil {
		t.Fatal(err)
	}
	if got := m.Disk().Seeks; got != seq+1 {
		t.Fatalf("re-read charged %d seeks, want %d", got-seq, 1)
	}
}

func TestScaledSpecShrinks(t *testing.T) {
	full := Default()
	small := Scaled(8)
	if small.Blocks >= full.Blocks || small.Snapshots >= full.Snapshots {
		t.Fatalf("Scaled(8) did not shrink: %+v", small)
	}
	if small.Blocks < 2 || small.Snapshots < 2 || small.FilesPerSnapshot < 1 {
		t.Fatalf("Scaled(8) went below minimums: %+v", small)
	}
	if s := Scaled(0); s.Blocks != full.Blocks {
		t.Fatalf("Scaled(0) should clamp to full scale")
	}
}

func TestFieldCatalogs(t *testing.T) {
	if !IsNodeField("velocity") || IsNodeField("stress_avg") {
		t.Fatal("IsNodeField wrong")
	}
	if !IsElemField("s12") || IsElemField("coords") {
		t.Fatal("IsElemField wrong")
	}
	if got := BlockID(0); got != "block_0001" {
		t.Fatalf("BlockID(0) = %q", got)
	}
	spec := Default()
	if got := spec.StepID(0); got != "0.000025" {
		t.Fatalf("StepID(0) = %q, want the paper's 0.000025", got)
	}
	if got := spec.StepID(2); got != "0.000075" {
		t.Fatalf("StepID(2) = %q, want the paper's 0.000075", got)
	}
}

// ElemScalar fields must stay in physically plausible, bounded ranges over
// the whole dataset lifetime (color maps depend on this).
func TestFieldRanges(t *testing.T) {
	spec := tinySpec()
	grain := mesh.GenerateAnnulus(spec.Mesh)
	for step := 0; step < 4; step++ {
		tm := float64(step+1) * spec.DT
		for e := 0; e < grain.NumCells(); e++ {
			c := grain.CellCentroid(e)
			temp := ElemScalar("temperature", c, tm)
			if temp < 250 || temp > 3200 {
				t.Fatalf("temperature %v out of range at %v", temp, c)
			}
			s := ElemScalar("stress_avg", c, tm)
			if s < 0 || s > 4e6 {
				t.Fatalf("stress_avg %v out of range", s)
			}
		}
	}
}
