package genx

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"godiva/internal/mesh"
)

// Plain binary format: the alternative the paper contrasts with scientific
// data libraries ("scientists often like to write data files using popular,
// standardized scientific data libraries [which] have at visualization time
// a higher input cost than do plain binary files"). One file per snapshot
// file slot holds the raw little-endian arrays back to back, preceded by a
// minimal fixed-layout table of contents: no tags, no checksums, no typed
// attribute machinery — and correspondingly little decode work at read
// time.
//
// Layout:
//
//	magic "GXPB", version u32, entry count u32
//	entries: blockID u32, field code u16, elemKind u16, count u64 (elements)
//	data: arrays in entry order (coords/fields float64, conn int32,
//	      gids int64)

const (
	plainMagic   = "GXPB"
	plainVersion = 1
)

// Field codes index MeshFields + NodeVectorFields + ElemScalarFields.
func plainFieldCode(name string) (uint16, bool) {
	all := plainFieldNames()
	for i, f := range all {
		if f == name {
			return uint16(i), true
		}
	}
	return 0, false
}

func plainFieldNames() []string {
	all := append([]string{}, MeshFields...)
	all = append(all, NodeVectorFields...)
	return append(all, ElemScalarFields...)
}

// PlainSnapshotFile names the i-th plain file of a snapshot.
func PlainSnapshotFile(dir string, step, i int) string {
	return filepath.Join(dir, fmt.Sprintf("genx_t%04d_%d.bin", step, i))
}

// WritePlainDataset writes the same dataset WriteDataset produces, in the
// plain binary format, for the format-cost comparison experiment.
func WritePlainDataset(spec Spec, dir string) ([]*mesh.TetMesh, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	grain := mesh.GenerateAnnulus(spec.Mesh)
	blocks := grain.Partition(spec.Blocks)
	for step := 0; step < spec.Snapshots; step++ {
		if err := writePlainSnapshot(spec, dir, step, blocks); err != nil {
			return nil, fmt.Errorf("plain snapshot %d: %w", step, err)
		}
	}
	return blocks, nil
}

func writePlainSnapshot(spec Spec, dir string, step int, blocks []*mesh.TetMesh) error {
	t := float64(step+1) * spec.DT
	for i := 0; i < spec.FilesPerSnapshot; i++ {
		f, err := os.Create(PlainSnapshotFile(dir, step, i))
		if err != nil {
			return err
		}
		w := bufio.NewWriterSize(f, 1<<16)
		var mine []int
		for b := range blocks {
			if b%spec.FilesPerSnapshot == i {
				mine = append(mine, b)
			}
		}
		if err := writePlainFile(w, mine, blocks, t); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func writePlainFile(w io.Writer, mine []int, blocks []*mesh.TetMesh, t float64) error {
	fields := plainFieldNames()
	type entry struct {
		block uint32
		code  uint16
		count uint64
	}
	var entries []entry
	for _, b := range mine {
		blk := blocks[b]
		for code, name := range fields {
			var count int
			switch {
			case name == "coords":
				count = len(blk.Coords)
			case name == "conn":
				count = len(blk.Tets)
			case name == "gids":
				count = len(blk.GlobalNode)
			case IsNodeField(name):
				count = 3 * blk.NumNodes()
			default:
				count = blk.NumCells()
			}
			entries = append(entries, entry{uint32(b), uint16(code), uint64(count)})
		}
	}
	hdr := make([]byte, 0, 12+16*len(entries))
	hdr = append(hdr, plainMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, plainVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(entries)))
	for _, e := range entries {
		hdr = binary.LittleEndian.AppendUint32(hdr, e.block)
		hdr = binary.LittleEndian.AppendUint16(hdr, e.code)
		hdr = binary.LittleEndian.AppendUint16(hdr, 0)
		hdr = binary.LittleEndian.AppendUint64(hdr, e.count)
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	writeF64 := func(v float64) error {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		_, err := w.Write(buf)
		return err
	}
	for _, b := range mine {
		blk := blocks[b]
		for _, name := range fields {
			switch {
			case name == "coords":
				for _, v := range blk.Coords {
					if err := writeF64(v); err != nil {
						return err
					}
				}
			case name == "conn":
				for _, v := range blk.Tets {
					binary.LittleEndian.PutUint32(buf[:4], uint32(v))
					if _, err := w.Write(buf[:4]); err != nil {
						return err
					}
				}
			case name == "gids":
				for _, v := range blk.GlobalNode {
					binary.LittleEndian.PutUint64(buf, uint64(v))
					if _, err := w.Write(buf); err != nil {
						return err
					}
				}
			case IsNodeField(name):
				for i := 0; i < blk.NumNodes(); i++ {
					x, y, z := NodeVector(name, blk.Node(int32(i)), t)
					for _, v := range []float64{x, y, z} {
						if err := writeF64(v); err != nil {
							return err
						}
					}
				}
			default:
				for c := 0; c < blk.NumCells(); c++ {
					if err := writeF64(ElemScalar(name, blk.CellCentroid(c), t)); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// PlainHandle reads one plain snapshot file, charging the platform at the
// raw decode rate.
type PlainHandle struct {
	r       *Reader
	data    []byte
	offsets map[plainKey]plainLoc
	blocks  []int
}

type plainKey struct {
	block int
	field string
}

type plainLoc struct {
	off   int64
	count int
	field string
}

// OpenPlain reads a plain snapshot file's table of contents.
func (r *Reader) OpenPlain(path string) (*PlainHandle, error) {
	if t := r.t(); t != nil {
		t.DiskOpen()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 12 || string(data[:4]) != plainMagic {
		return nil, fmt.Errorf("genx: %s is not a plain snapshot file", path)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != plainVersion {
		return nil, fmt.Errorf("genx: plain version %d unsupported", v)
	}
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	fields := plainFieldNames()
	h := &PlainHandle{r: r, data: data, offsets: make(map[plainKey]plainLoc)}
	off := int64(12 + 16*n)
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		e := data[12+16*i:]
		block := int(binary.LittleEndian.Uint32(e[0:4]))
		code := int(binary.LittleEndian.Uint16(e[4:6]))
		count := int(binary.LittleEndian.Uint64(e[8:16]))
		if code >= len(fields) {
			return nil, fmt.Errorf("genx: bad field code %d", code)
		}
		name := fields[code]
		h.offsets[plainKey{block, name}] = plainLoc{off: off, count: count, field: name}
		if !seen[block] {
			seen[block] = true
			h.blocks = append(h.blocks, block)
		}
		elem := 8
		if name == "conn" {
			elem = 4
		}
		off += int64(count * elem)
	}
	if off != int64(len(data)) {
		return nil, fmt.Errorf("genx: plain file length %d, expected %d", len(data), off)
	}
	return h, nil
}

// Blocks lists the zero-based block IDs stored in the file.
func (h *PlainHandle) Blocks() []int { return h.blocks }

// ReadMesh reads a block's mesh arrays.
func (h *PlainHandle) ReadMesh(block int) (*mesh.TetMesh, error) {
	coords, err := h.readF64(block, "coords")
	if err != nil {
		return nil, err
	}
	connLoc, ok := h.offsets[plainKey{block, "conn"}]
	if !ok {
		return nil, fmt.Errorf("genx: plain block %d has no connectivity", block)
	}
	h.charge(connLoc.count * 4)
	conn := make([]int32, connLoc.count)
	for i := range conn {
		conn[i] = int32(binary.LittleEndian.Uint32(h.data[connLoc.off+int64(4*i):]))
	}
	gidLoc, ok := h.offsets[plainKey{block, "gids"}]
	if !ok {
		return nil, fmt.Errorf("genx: plain block %d has no global IDs", block)
	}
	h.charge(gidLoc.count * 8)
	gids := make([]int64, gidLoc.count)
	for i := range gids {
		gids[i] = int64(binary.LittleEndian.Uint64(h.data[gidLoc.off+int64(8*i):]))
	}
	return &mesh.TetMesh{Coords: coords, Tets: conn, GlobalNode: gids}, nil
}

// ReadField reads a block's float64 field.
func (h *PlainHandle) ReadField(block int, field string) ([]float64, error) {
	return h.readF64(block, field)
}

func (h *PlainHandle) readF64(block int, field string) ([]float64, error) {
	loc, ok := h.offsets[plainKey{block, field}]
	if !ok {
		return nil, fmt.Errorf("genx: plain block %d has no field %q", block, field)
	}
	h.charge(loc.count * 8)
	out := make([]float64, loc.count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(h.data[loc.off+int64(8*i):]))
	}
	return out, nil
}

// charge bills a sequential raw read: transfer plus raw decode, no per-
// request scientific-library overhead.
func (h *PlainHandle) charge(n int) {
	if t := h.r.t(); t != nil {
		t.DiskRead(h.r.scaled(int64(n)), 0)
		t.DecodeRaw(h.r.scaled(int64(n)))
	}
}
