package genx

import (
	"fmt"
	"path/filepath"
	"sort"

	"godiva/internal/mesh"
	"godiva/internal/shdf"
)

// Streaming support: a live producer materializes snapshot files one at a
// time (WriteDataset's unit of work is the whole dataset) and a push-enabled
// server writes ingested payloads back out in the exact layout the reader
// expects, so a dataset grown step by step is indistinguishable from one
// generated up front.

// ParseSnapshotFile parses a snapshot file name ("genx_t0003_1.shdf") into
// its step and file indices. Only the exact SnapshotFile format is accepted:
// the name is parsed and then re-formatted, so padding or suffix variations
// are rejected rather than aliased onto another file's indices.
func ParseSnapshotFile(name string) (step, file int, ok bool) {
	base := filepath.Base(name)
	if _, err := fmt.Sscanf(base, "genx_t%d_%d.shdf", &step, &file); err != nil {
		return 0, 0, false
	}
	if step < 0 || file < 0 || fmt.Sprintf("genx_t%04d_%d.shdf", step, file) != base {
		return 0, 0, false
	}
	return step, file, true
}

// MakeBlockData evaluates every analytic field of one partition block at one
// time step, returning the same in-memory form ReadBlock produces. This is
// the producer side of the push path: a streaming generator makes BlockData
// and ships it, instead of writing files for a server to re-read.
func MakeBlockData(spec Spec, blk *mesh.TetMesh, id, step int) *BlockData {
	t := float64(step+1) * spec.DT
	bd := &BlockData{
		ID: id, Name: BlockID(id), Mesh: blk,
		Node: make(map[string][]float64, len(NodeVectorFields)),
		Elem: make(map[string][]float64, len(ElemScalarFields)),
		Time: t, StepID: spec.StepID(step),
	}
	n, e := blk.NumNodes(), blk.NumCells()
	for _, f := range NodeVectorFields {
		buf := make([]float64, 3*n)
		for i := 0; i < n; i++ {
			x, y, z := NodeVector(f, blk.Node(int32(i)), t)
			buf[3*i], buf[3*i+1], buf[3*i+2] = x, y, z
		}
		bd.Node[f] = buf
	}
	for _, f := range ElemScalarFields {
		buf := make([]float64, e)
		for c := 0; c < e; c++ {
			buf[c] = ElemScalar(f, blk.CellCentroid(c), t)
		}
		bd.Elem[f] = buf
	}
	return bd
}

// StreamDataset generates the dataset one snapshot file at a time, calling
// emit for each (step, file) with the blocks that file holds — dealt
// round-robin exactly like WriteDataset, so a consumer that writes the
// payloads out reproduces the on-disk layout. emit returning an error stops
// the stream; pacing and cancellation live in the caller's emit.
func StreamDataset(spec Spec, emit func(step, file int, blocks []*BlockData) error) error {
	grain := mesh.GenerateAnnulus(spec.Mesh)
	parts := grain.Partition(spec.Blocks)
	for step := 0; step < spec.Snapshots; step++ {
		files := make([][]*BlockData, spec.FilesPerSnapshot)
		for b, blk := range parts {
			f := b % spec.FilesPerSnapshot
			files[f] = append(files[f], MakeBlockData(spec, blk, b, step))
		}
		for f, blocks := range files {
			if err := emit(step, f, blocks); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteBlockDataFile writes one snapshot file from in-memory block payloads,
// mirroring writeSnapshot's layout (same SDS names, group structure and
// attributes), so ingested files read back identically to generated ones.
func WriteBlockDataFile(path string, t float64, step int, stepID string, blocks []*BlockData) error {
	w, err := shdf.Create(path)
	if err != nil {
		return err
	}
	for _, bd := range blocks {
		if err := writeBlockData(w, bd); err != nil {
			w.Close()
			return fmt.Errorf("block %d: %w", bd.ID, err)
		}
	}
	if _, err := w.WriteAttr("time", t); err != nil {
		w.Close()
		return err
	}
	if _, err := w.WriteAttr("step", step); err != nil {
		w.Close()
		return err
	}
	if _, err := w.WriteAttr("step_id", stepID); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// writeBlockData writes one block's arrays (writeBlock's twin for data that
// is already materialized). Field maps are written in sorted name order so
// the file layout is deterministic.
func writeBlockData(w *shdf.Writer, bd *BlockData) error {
	var members []shdf.Ref
	add := func(ref shdf.Ref, err error) error {
		if err != nil {
			return err
		}
		members = append(members, ref)
		return nil
	}
	m := bd.Mesh
	if m == nil {
		return fmt.Errorf("block %d has no mesh", bd.ID)
	}
	n := len(m.Coords) / 3
	e := len(m.Tets) / 4
	if err := add(w.WriteSDS(sdsName(bd.ID, "coords"), []int{n, 3}, m.Coords)); err != nil {
		return err
	}
	if err := add(w.WriteSDS(sdsName(bd.ID, "conn"), []int{e, 4}, m.Tets)); err != nil {
		return err
	}
	if err := add(w.WriteSDS(sdsName(bd.ID, "gids"), []int{len(m.GlobalNode)}, m.GlobalNode)); err != nil {
		return err
	}
	for _, f := range sortedFieldNames(bd.Node) {
		v := bd.Node[f]
		dims := []int{len(v)}
		if n > 0 && len(v) == 3*n {
			dims = []int{n, 3}
		}
		if err := add(w.WriteSDS(sdsName(bd.ID, f), dims, v)); err != nil {
			return err
		}
	}
	for _, f := range sortedFieldNames(bd.Elem) {
		v := bd.Elem[f]
		if err := add(w.WriteSDS(sdsName(bd.ID, f), []int{len(v)}, v)); err != nil {
			return err
		}
	}
	name := bd.Name
	if name == "" {
		name = BlockID(bd.ID)
	}
	_, err := w.WriteVGroup(name, members)
	return err
}

// sortedFieldNames returns a field map's names in sorted order.
func sortedFieldNames(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
