package genx

import (
	"fmt"
	"os"

	"godiva/internal/mesh"
	"godiva/internal/shdf"
)

// WriteDataset generates the grain mesh, partitions it, and writes every
// snapshot of the dataset into dir. It returns the partition blocks so
// callers can compare visualization output against ground truth.
func WriteDataset(spec Spec, dir string) ([]*mesh.TetMesh, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	grain := mesh.GenerateAnnulus(spec.Mesh)
	blocks := grain.Partition(spec.Blocks)
	for step := 0; step < spec.Snapshots; step++ {
		if err := writeSnapshot(spec, dir, step, blocks); err != nil {
			return nil, fmt.Errorf("snapshot %d: %w", step, err)
		}
	}
	return blocks, nil
}

// writeSnapshot writes one time step: blocks are dealt round-robin onto the
// snapshot's files, every field of every block is written.
func writeSnapshot(spec Spec, dir string, step int, blocks []*mesh.TetMesh) error {
	t := float64(step+1) * spec.DT
	writers := make([]*shdf.Writer, spec.FilesPerSnapshot)
	for i := range writers {
		w, err := shdf.Create(SnapshotFile(dir, step, i))
		if err != nil {
			return err
		}
		writers[i] = w
	}
	for b, blk := range blocks {
		w := writers[b%len(writers)]
		if err := writeBlock(w, b, blk, t); err != nil {
			return fmt.Errorf("block %d: %w", b, err)
		}
	}
	for i, w := range writers {
		if _, err := w.WriteAttr("time", t); err != nil {
			return err
		}
		if _, err := w.WriteAttr("step", step); err != nil {
			return err
		}
		if _, err := w.WriteAttr("step_id", spec.StepID(step)); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("file %d: %w", i, err)
		}
	}
	return nil
}

// sdsName names a block's dataset inside a snapshot file.
func sdsName(blockID int, field string) string {
	return fmt.Sprintf("b%04d:%s", blockID+1, field)
}

func writeBlock(w *shdf.Writer, id int, blk *mesh.TetMesh, t float64) error {
	var members []shdf.Ref
	add := func(ref shdf.Ref, err error) error {
		if err != nil {
			return err
		}
		members = append(members, ref)
		return nil
	}
	n := blk.NumNodes()
	e := blk.NumCells()
	// Mesh arrays.
	if err := add(w.WriteSDS(sdsName(id, "coords"), []int{n, 3}, blk.Coords)); err != nil {
		return err
	}
	if err := add(w.WriteSDS(sdsName(id, "conn"), []int{e, 4}, blk.Tets)); err != nil {
		return err
	}
	if err := add(w.WriteSDS(sdsName(id, "gids"), []int{n}, blk.GlobalNode)); err != nil {
		return err
	}
	// Node-based vector fields.
	buf := make([]float64, 3*n)
	for _, f := range NodeVectorFields {
		for i := 0; i < n; i++ {
			x, y, z := NodeVector(f, blk.Node(int32(i)), t)
			buf[3*i], buf[3*i+1], buf[3*i+2] = x, y, z
		}
		if err := add(w.WriteSDS(sdsName(id, f), []int{n, 3}, buf)); err != nil {
			return err
		}
	}
	// Element-based scalar fields.
	ebuf := make([]float64, e)
	for _, f := range ElemScalarFields {
		for c := 0; c < e; c++ {
			ebuf[c] = ElemScalar(f, blk.CellCentroid(c), t)
		}
		if err := add(w.WriteSDS(sdsName(id, f), []int{e}, ebuf)); err != nil {
			return err
		}
	}
	_, err := w.WriteVGroup(BlockID(id), members)
	return err
}
