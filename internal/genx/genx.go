// Package genx generates and reads synthetic rocket-simulation snapshot
// datasets shaped like the GENx data the paper's experiments visualize
// (§4.2): an unstructured tetrahedral mesh of a solid-propellant grain,
// partitioned into blocks with duplicated boundary nodes, carrying
// node-based vector quantities (displacement, velocity, acceleration) and
// element-based scalars (a scalar measure of average stress, the six stress
// tensor components, and restart quantities), written as a series of
// time-step snapshots of eight SHDF files each.
//
// The paper's data cannot be obtained (CSAR's Titan IV runs); this package
// preserves what the experiments depend on: data volumes, per-file layout,
// block structure, and time-series organization. Field values are smooth
// analytic functions of position and time — a pressure wave travelling down
// the grain while the bore burns outward — so that visualizations are
// meaningful and deterministic.
package genx

import (
	"fmt"
	"math"
	"path/filepath"

	"godiva/internal/mesh"
)

// Spec describes one synthetic dataset.
type Spec struct {
	// Mesh is the propellant-grain geometry.
	Mesh mesh.AnnulusSpec
	// Blocks is the number of partition blocks (the paper's data: 120).
	Blocks int
	// Snapshots is the number of time steps (the paper processes 32).
	Snapshots int
	// FilesPerSnapshot is how many SHDF files hold one snapshot (paper: 8).
	FilesPerSnapshot int
	// DT is the simulated time between snapshots in seconds.
	DT float64
}

// Default returns the full-scale dataset spec used by the experiments: a
// grain mesh of about 96,600 nodes and 460,800 tets in 120 blocks across 8
// files per snapshot, matching the order of magnitude of the paper's
// 120,481-node, 679,008-element, 120-block dataset.
func Default() Spec {
	return Spec{
		Mesh: mesh.AnnulusSpec{
			NR: 4, NTheta: 120, NZ: 160,
			RInner: 0.6, ROuter: 1.55, Length: 24,
			StarPoints: 0,
		},
		Blocks:           120,
		Snapshots:        32,
		FilesPerSnapshot: 8,
		DT:               2.5e-5, // the paper's time-step IDs: 0.000025, …
	}
}

// Scaled returns the spec shrunk by factor f in every mesh direction and in
// block/snapshot counts, for tests and benches. f must be >= 1.
func Scaled(f int) Spec {
	if f < 1 {
		f = 1
	}
	s := Default()
	s.Mesh.NTheta = max(3, s.Mesh.NTheta/f)
	s.Mesh.NZ = max(2, s.Mesh.NZ/f)
	s.Blocks = max(2, s.Blocks/f)
	s.Snapshots = max(2, s.Snapshots/f)
	s.FilesPerSnapshot = max(1, s.FilesPerSnapshot/min(f, 4))
	return s
}

// Field catalogs. MeshFields are read once per block in the GODIVA builds;
// the original Voyager re-reads coordinates for every visualization pass.
var (
	// MeshFields: node coordinates, tet connectivity, global node IDs.
	MeshFields = []string{"coords", "conn", "gids"}
	// NodeVectorFields are node-based 3-vectors.
	NodeVectorFields = []string{"displacement", "velocity", "acceleration"}
	// ElemScalarFields are element-based scalars: average stress, the six
	// stress tensor components, and restart quantities.
	ElemScalarFields = []string{
		"stress_avg", "s11", "s22", "s33", "s12", "s13", "s23",
		"temperature", "energy",
	}
)

// IsNodeField reports whether name is a node-based vector field.
func IsNodeField(name string) bool {
	for _, f := range NodeVectorFields {
		if f == name {
			return true
		}
	}
	return false
}

// IsElemField reports whether name is an element-based scalar field.
func IsElemField(name string) bool {
	for _, f := range ElemScalarFields {
		if f == name {
			return true
		}
	}
	return false
}

// SnapshotFile names the i-th file of a snapshot.
func SnapshotFile(dir string, step, i int) string {
	return filepath.Join(dir, fmt.Sprintf("genx_t%04d_%d.shdf", step, i))
}

// SnapshotFiles names all files of a snapshot.
func (s Spec) SnapshotFiles(dir string, step int) []string {
	out := make([]string, s.FilesPerSnapshot)
	for i := range out {
		out[i] = SnapshotFile(dir, step, i)
	}
	return out
}

// StepID formats a snapshot's time-step identifier the way the paper's
// examples do ("0.000025", "0.000075", …).
func (s Spec) StepID(step int) string {
	return fmt.Sprintf("%.6f", float64(step+1)*s.DT)
}

// BlockID formats a block identifier ("block_0001", …).
func BlockID(b int) string { return fmt.Sprintf("block_%04d", b+1) }

// --- analytic physics fields ---
//
// The grain burns: a pressure/stress wave travels along z while stresses
// relax radially; displacement grows radially with time; velocity and
// acceleration are its time derivatives. Constants are arbitrary but keep
// the scalars in distinct, stable ranges that the visualization tests color
// and contour.

const (
	waveNumber = 0.9  // axial wave number (1/m)
	waveSpeed  = 800  // wave speed (m/s) — scaled for visible motion per DT
	baseStress = 2e6  // Pa
	ampStress  = 8e5  // Pa
	baseTemp   = 300  // K
	flameTemp  = 2900 // K
)

// NodeVector evaluates a node-based vector field at position p and time t.
func NodeVector(name string, p mesh.Vec3, t float64) (x, y, z float64) {
	r := math.Hypot(p.X, p.Y)
	if r == 0 {
		r = 1e-12
	}
	phase := waveNumber*p.Z - waveSpeed*waveNumber*t*1e3
	radial := 1e-3 * (1 + math.Sin(phase)) * t * 4e4
	ur := radial / r
	switch name {
	case "displacement":
		return ur * p.X, ur * p.Y, 2e-4 * math.Cos(phase)
	case "velocity":
		v := 1e-1 * math.Cos(phase)
		return v * p.X / r, v * p.Y / r, 5e-2 * math.Sin(phase)
	case "acceleration":
		a := 40 * math.Sin(phase)
		return a * p.X / r, a * p.Y / r, 20 * math.Cos(phase)
	default:
		return 0, 0, 0
	}
}

// ElemScalar evaluates an element-based scalar field at centroid c, time t.
func ElemScalar(name string, c mesh.Vec3, t float64) float64 {
	r := math.Hypot(c.X, c.Y)
	phase := waveNumber*c.Z - waveSpeed*waveNumber*t*1e3
	wave := math.Sin(phase)
	radial := math.Exp(-2 * (r - 0.6))
	switch name {
	case "stress_avg":
		return baseStress + ampStress*wave*radial
	case "s11":
		return baseStress * (1 + 0.3*wave) * (c.X * c.X / (r*r + 1e-12))
	case "s22":
		return baseStress * (1 + 0.3*wave) * (c.Y * c.Y / (r*r + 1e-12))
	case "s33":
		return baseStress * (0.8 - 0.2*wave)
	case "s12":
		return 0.25 * baseStress * wave * (c.X * c.Y / (r*r + 1e-12))
	case "s13":
		return 0.15 * baseStress * math.Cos(phase)
	case "s23":
		return 0.15 * baseStress * math.Sin(phase+math.Pi/3)
	case "temperature":
		// Hot at the burning bore, cool at the case.
		return baseTemp + (flameTemp-baseTemp)*math.Exp(-6*(r-0.55))*(1+0.05*wave)
	case "energy":
		return 1e5 * (1 + 0.4*wave*radial)
	default:
		return 0
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
