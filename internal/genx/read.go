package genx

import (
	"fmt"
	"strings"

	"godiva/internal/mesh"
	"godiva/internal/platform"
	"godiva/internal/shdf"
)

// Per-request overheads of the scientific-format read path, charged on top
// of payload bytes. The paper's datasets are many small arrays (9,600 to
// 48,000 bytes), so per-request library overhead is a real share of input
// cost and is why its tests "issued a large number of relatively small I/O
// requests".
const (
	reqDiskOverhead   = 2048 // extra effective bytes per read request
	reqDecodeOverhead = 4096 // extra effective bytes per decode
)

// Reader reads snapshot files, optionally charging all I/O and decode work
// to a simulated platform. A nil machine reads at native speed (used by the
// examples and tests); the experiments pass the Engle or Turing model.
type Reader struct {
	M *platform.Machine

	// Mapped opens snapshot files with shdf.OpenMapped: dataset reads
	// return views that alias the file's read-only memory mapping instead
	// of decoded copies (falling back to ordinary reads where mmap is
	// unavailable). Borrowed views live until the FileHandle is closed;
	// callers that hold datasets across Close must copy them first.
	Mapped bool

	// VolumeScale multiplies payload bytes when charging the platform
	// (request-count overheads are not scaled). The experiments run on a
	// geometrically reduced dataset with the full block and file structure,
	// and set VolumeScale to the full-to-reduced cell ratio so the platform
	// sees the paper's data volumes while the real computation stays cheap
	// enough not to perturb scaled virtual time. Zero means 1.
	VolumeScale float64

	task *platform.Task
}

// t returns the reader's platform task, creating it on first use. A Reader
// is used by one goroutine at a time (the thread doing the reading), which
// is what Task requires.
func (r *Reader) t() *platform.Task {
	if r.M == nil {
		return nil
	}
	if r.task == nil {
		r.task = r.M.NewTask()
	}
	return r.task
}

// Settle pays batched platform charges that are big enough to sleep
// accurately; call at the end of each fine-grained timed read section.
func (r *Reader) Settle() {
	if r.task != nil {
		r.task.Settle()
	}
}

// Flush pays all batched platform charges. Call at the end of a unit read
// or snapshot so deferred occupancy lands inside the measured I/O.
func (r *Reader) Flush() {
	if r.task != nil {
		r.task.Flush()
	}
}

func (r *Reader) scaled(n int64) int64 {
	if r.VolumeScale > 1 {
		return int64(float64(n) * r.VolumeScale)
	}
	return n
}

func (r *Reader) chargeRead(n int64, seeks int) {
	if t := r.t(); t != nil {
		t.DiskRead(r.scaled(n)+reqDiskOverhead, seeks)
	}
}

func (r *Reader) chargeDecode(n int64) {
	if t := r.t(); t != nil {
		t.Decode(r.scaled(n) + reqDecodeOverhead)
	}
}

// BlockEntry locates one block inside an open snapshot file.
type BlockEntry struct {
	Name    string // "block_0001"
	ID      int    // zero-based block index
	Members map[string]shdf.ObjectInfo
}

// FileHandle is one open snapshot file plus the read position used to model
// sequential reads vs seeks.
type FileHandle struct {
	r       *Reader
	f       *shdf.File
	path    string
	nextOff int64 // end of the last payload read; reads elsewhere seek
	Time    float64
	StepID  string
	blocks  []BlockEntry
}

// Open opens a snapshot file, reading its directory, block table and time
// attributes (charged as one open plus one small read).
func (r *Reader) Open(path string) (*FileHandle, error) {
	if t := r.t(); t != nil {
		t.DiskOpen()
	}
	var f *shdf.File
	var err error
	if r.Mapped {
		f, err = shdf.OpenMapped(path)
	} else {
		f, err = shdf.Open(path)
	}
	if err != nil {
		return nil, err
	}
	h := &FileHandle{r: r, f: f, path: path}
	// Directory and footer: their size tracks the object count, which the
	// reduced dataset preserves, so this charge is not volume-scaled.
	if t := r.t(); t != nil {
		t.DiskRead(64*1024, 1)
		t.Decode(16 * 1024)
	}

	groups, err := f.VGroups()
	if err != nil {
		f.Close()
		return nil, err
	}
	for _, g := range groups {
		if !strings.HasPrefix(g.Name, "block_") {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(g.Name, "block_%d", &id); err != nil {
			f.Close()
			return nil, fmt.Errorf("genx: bad block group name %q", g.Name)
		}
		e := BlockEntry{Name: g.Name, ID: id - 1, Members: make(map[string]shdf.ObjectInfo)}
		for _, ref := range g.Members {
			info, err := f.Info(ref)
			if err != nil {
				f.Close()
				return nil, err
			}
			// Member SDS names look like "b0001:coords".
			if i := strings.IndexByte(info.Name, ':'); i >= 0 {
				e.Members[info.Name[i+1:]] = info
			}
		}
		h.blocks = append(h.blocks, e)
	}
	if a, err := findAttr(f, "time"); err == nil {
		h.Time = a.Float
	}
	if a, err := findAttr(f, "step_id"); err == nil {
		h.StepID = a.Str
	}
	return h, nil
}

func findAttr(f *shdf.File, name string) (*shdf.Attr, error) {
	info, err := f.FindByName(shdf.TagAttr, name)
	if err != nil {
		return nil, err
	}
	return f.ReadAttr(info.Ref)
}

// Close closes the underlying file.
func (h *FileHandle) Close() error { return h.f.Close() }

// Path returns the file's path.
func (h *FileHandle) Path() string { return h.path }

// Blocks lists the blocks stored in this file.
func (h *FileHandle) Blocks() []BlockEntry { return h.blocks }

// readaheadWindow is how far ahead (in full-scale bytes) the OS readahead
// reaches: forward skips inside the window cost no seek, while backward
// jumps and far forward jumps reposition the disk.
const readaheadWindow = 256 * 1024

// readSDS reads one dataset, charging transfer, decode, and a seek when the
// read is not satisfied by sequential readahead.
func (h *FileHandle) readSDS(info shdf.ObjectInfo) (*shdf.Dataset, error) {
	seeks := 0
	if jump := info.Offset - h.nextOff; jump != 0 {
		if jump < 0 || h.r.scaled(jump) > readaheadWindow {
			seeks = 1
		}
	}
	h.r.chargeRead(info.ByteLen, seeks)
	ds, err := h.f.ReadSDS(info.Ref)
	if err != nil {
		return nil, err
	}
	h.r.chargeDecode(info.ByteLen)
	h.nextOff = info.Offset + info.ByteLen
	return ds, nil
}

// ReadField reads one named field of a block as raw float64s (node vectors
// come back flattened x,y,z). Mesh fields: "coords" returns coordinates,
// "conn" and "gids" are not float fields — use ReadMesh for those.
func (h *FileHandle) ReadField(e BlockEntry, field string) ([]float64, error) {
	info, ok := e.Members[field]
	if !ok {
		return nil, fmt.Errorf("genx: block %s has no field %q", e.Name, field)
	}
	ds, err := h.readSDS(info)
	if err != nil {
		return nil, err
	}
	if ds.Float64s == nil {
		return nil, fmt.Errorf("genx: field %q of %s is %v, not float64", field, e.Name, ds.Type)
	}
	return ds.Float64s, nil
}

// ReadMesh reads a block's mesh arrays (coords, conn, gids).
func (h *FileHandle) ReadMesh(e BlockEntry) (*mesh.TetMesh, error) {
	coords, err := h.ReadField(e, "coords")
	if err != nil {
		return nil, err
	}
	connInfo, ok := e.Members["conn"]
	if !ok {
		return nil, fmt.Errorf("genx: block %s has no connectivity", e.Name)
	}
	conn, err := h.readSDS(connInfo)
	if err != nil {
		return nil, err
	}
	if conn.Int32s == nil {
		return nil, fmt.Errorf("genx: connectivity of %s is %v", e.Name, conn.Type)
	}
	gidInfo, ok := e.Members["gids"]
	if !ok {
		return nil, fmt.Errorf("genx: block %s has no global IDs", e.Name)
	}
	gids, err := h.readSDS(gidInfo)
	if err != nil {
		return nil, err
	}
	if gids.Int64s == nil {
		return nil, fmt.Errorf("genx: global IDs of %s are %v", e.Name, gids.Type)
	}
	return &mesh.TetMesh{Coords: coords, Tets: conn.Int32s, GlobalNode: gids.Int64s}, nil
}

// BlockData is one block's in-memory datasets for one snapshot.
type BlockData struct {
	ID     int
	Name   string
	Mesh   *mesh.TetMesh
	Node   map[string][]float64 // node vector fields, flattened
	Elem   map[string][]float64 // element scalar fields
	Time   float64
	StepID string
}

// ReadBlock reads a block's mesh plus the listed variable fields.
func (h *FileHandle) ReadBlock(e BlockEntry, vars []string) (*BlockData, error) {
	m, err := h.ReadMesh(e)
	if err != nil {
		return nil, err
	}
	bd := &BlockData{
		ID: e.ID, Name: e.Name, Mesh: m,
		Node: make(map[string][]float64), Elem: make(map[string][]float64),
		Time: h.Time, StepID: h.StepID,
	}
	for _, v := range vars {
		data, err := h.ReadField(e, v)
		if err != nil {
			return nil, err
		}
		switch {
		case IsNodeField(v):
			bd.Node[v] = data
		case IsElemField(v):
			bd.Elem[v] = data
		default:
			return nil, fmt.Errorf("genx: unknown variable %q", v)
		}
	}
	return bd, nil
}
