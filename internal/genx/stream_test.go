package genx

import (
	"math"
	"path/filepath"
	"testing"
)

func TestParseSnapshotFile(t *testing.T) {
	cases := []struct {
		name       string
		step, file int
		ok         bool
	}{
		{"genx_t0000_0.shdf", 0, 0, true},
		{"genx_t0003_1.shdf", 3, 1, true},
		{"genx_t0123_7.shdf", 123, 7, true},
		{"/some/dir/genx_t0042_2.shdf", 42, 2, true},
		{"genx_t12345_0.shdf", 12345, 0, true}, // wider than the pad: still canonical
		{"genx_t003_1.shdf", 0, 0, false},      // wrong padding
		{"genx_t0003_1.shdf.tmp", 0, 0, false},
		{"genx_t0003.shdf", 0, 0, false},
		{"other_t0003_1.shdf", 0, 0, false},
		{"genx_t-003_1.shdf", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, c := range cases {
		step, file, ok := ParseSnapshotFile(c.name)
		if ok != c.ok || step != c.step || file != c.file {
			t.Errorf("ParseSnapshotFile(%q) = (%d, %d, %v), want (%d, %d, %v)",
				c.name, step, file, ok, c.step, c.file, c.ok)
		}
	}
}

// TestStreamRoundTrip streams a tiny dataset through WriteBlockDataFile and
// checks the files read back with the same shape and values the in-memory
// payloads carried — the property the ingest path depends on.
func TestStreamRoundTrip(t *testing.T) {
	spec := Scaled(32)
	spec.Snapshots = 2
	dir := t.TempDir()

	made := map[string][]*BlockData{}
	err := StreamDataset(spec, func(step, file int, blocks []*BlockData) error {
		path := SnapshotFile(dir, step, file)
		made[path] = blocks
		bd := blocks[0]
		return WriteBlockDataFile(path, bd.Time, step, bd.StepID, blocks)
	})
	if err != nil {
		t.Fatalf("StreamDataset: %v", err)
	}

	got, err := Discover(dir)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if got.Snapshots != spec.Snapshots || got.FilesPerSnapshot != spec.FilesPerSnapshot ||
		got.Blocks != spec.Blocks {
		t.Fatalf("Discover = %+v, want counts from %+v", got, spec)
	}

	r := &Reader{}
	for path, blocks := range made {
		h, err := r.Open(path)
		if err != nil {
			t.Fatalf("Open(%s): %v", path, err)
		}
		if len(h.Blocks()) != len(blocks) {
			t.Fatalf("%s: %d blocks on disk, streamed %d", filepath.Base(path), len(h.Blocks()), len(blocks))
		}
		for _, e := range h.Blocks() {
			var want *BlockData
			for _, bd := range blocks {
				if bd.ID == e.ID {
					want = bd
				}
			}
			if want == nil {
				t.Fatalf("%s: unexpected block %d on disk", filepath.Base(path), e.ID)
			}
			bd, err := h.ReadBlock(e, []string{"velocity", "stress_avg"})
			if err != nil {
				t.Fatalf("ReadBlock(%d): %v", e.ID, err)
			}
			if bd.StepID != want.StepID || bd.Time != want.Time {
				t.Errorf("block %d: step (%q, %g), want (%q, %g)",
					e.ID, bd.StepID, bd.Time, want.StepID, want.Time)
			}
			checkSame(t, "coords", bd.Mesh.Coords, want.Mesh.Coords)
			checkSame(t, "velocity", bd.Node["velocity"], want.Node["velocity"])
			checkSame(t, "stress_avg", bd.Elem["stress_avg"], want.Elem["stress_avg"])
		}
		h.Close()
	}
}

func checkSame(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 0 {
			t.Fatalf("%s[%d] = %g, want %g", name, i, got[i], want[i])
		}
	}
}
