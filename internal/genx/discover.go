package genx

import (
	"fmt"
	"os"
)

// Discover inspects a dataset directory written by WriteDataset and
// reconstructs the Spec fields a reader needs: snapshot count, files per
// snapshot, block count and the time step. The mesh geometry itself is not
// recovered (it lives in the files).
func Discover(dir string) (Spec, error) {
	var spec Spec
	for {
		path := SnapshotFile(dir, spec.Snapshots, 0)
		if _, err := os.Stat(path); err != nil {
			break
		}
		spec.Snapshots++
	}
	if spec.Snapshots == 0 {
		return spec, fmt.Errorf("genx: no snapshot files in %s", dir)
	}
	for {
		path := SnapshotFile(dir, 0, spec.FilesPerSnapshot)
		if _, err := os.Stat(path); err != nil {
			break
		}
		spec.FilesPerSnapshot++
	}
	r := &Reader{}
	for i := 0; i < spec.FilesPerSnapshot; i++ {
		h, err := r.Open(SnapshotFile(dir, 0, i))
		if err != nil {
			return spec, fmt.Errorf("genx: discovering %s: %w", dir, err)
		}
		spec.Blocks += len(h.Blocks())
		if i == 0 {
			spec.DT = h.Time // snapshot 0 is written at t = DT
		}
		h.Close()
	}
	return spec, nil
}
