package genx

import "testing"

func TestDiscover(t *testing.T) {
	spec, dir, _ := writeTiny(t)
	got, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Snapshots != spec.Snapshots {
		t.Fatalf("Snapshots = %d, want %d", got.Snapshots, spec.Snapshots)
	}
	if got.FilesPerSnapshot != spec.FilesPerSnapshot {
		t.Fatalf("FilesPerSnapshot = %d, want %d", got.FilesPerSnapshot, spec.FilesPerSnapshot)
	}
	if got.Blocks != spec.Blocks {
		t.Fatalf("Blocks = %d, want %d", got.Blocks, spec.Blocks)
	}
	if got.DT != spec.DT {
		t.Fatalf("DT = %v, want %v", got.DT, spec.DT)
	}
	// Step IDs derived from the discovered DT must match the written ones.
	if got.StepID(1) != spec.StepID(1) {
		t.Fatalf("StepID(1) = %q, want %q", got.StepID(1), spec.StepID(1))
	}
}

func TestDiscoverEmptyDir(t *testing.T) {
	if _, err := Discover(t.TempDir()); err == nil {
		t.Fatal("Discover on empty directory succeeded")
	}
}
