package platform

import "time"

// Host sleep timers have a granularity floor (around a millisecond on many
// kernels), so paying every small charge with its own sleep would inflate
// scaled virtual time badly. A Task therefore accumulates charge debt and
// pays it in lumps of at least lumpWall of wall time, holding the resource
// (CPU token or disk) for the whole lump, which preserves aggregate
// occupancy and contention while keeping the per-sleep overshoot error at a
// few percent.
const (
	lumpWall    = 5 * time.Millisecond  // target wall duration per paid lump
	maxLumpWall = 20 * time.Millisecond // slice ceiling for fairness
)

// Task is one logical thread of activity on a machine — e.g. a Voyager
// main thread, or the GODIVA I/O thread. It batches small CPU and disk
// charges into lump payments. A Task must be used by one goroutine at a
// time; different goroutines use different Tasks of the same Machine and
// contend through it.
type Task struct {
	m        *Machine
	cpuDebt  time.Duration // CPU occupancy owed (already speed-adjusted)
	diskDebt time.Duration // disk occupancy owed
}

// NewTask creates a task on the machine.
func (m *Machine) NewTask() *Task { return &Task{m: m} }

// lumpVirtual returns the debt level at which a lump is paid.
func (t *Task) lumpVirtual() time.Duration {
	return time.Duration(float64(lumpWall) / t.m.scale)
}

// Compute charges d of computation at general CPU speed.
func (t *Task) Compute(d time.Duration) { t.chargeCPU(d, t.m.spec.CPUSpeed) }

// ComputeRender charges d of computation on the graphics path.
func (t *Task) ComputeRender(d time.Duration) { t.chargeCPU(d, t.m.spec.RenderSpeed) }

// Decode charges the CPU cost of decoding n bytes of scientific-format
// data.
func (t *Task) Decode(n int64) {
	if n <= 0 {
		return
	}
	d := time.Duration(float64(n) / t.m.spec.DecodeRate * float64(time.Second))
	t.chargeCPU(d, t.m.spec.CPUSpeed)
}

// DecodeRaw charges the (much smaller) CPU cost of reading n bytes of plain
// binary data: essentially memory copies.
func (t *Task) DecodeRaw(n int64) {
	if n <= 0 {
		return
	}
	rate := t.m.spec.RawDecodeRate
	if rate <= 0 {
		rate = t.m.spec.DecodeRate
	}
	d := time.Duration(float64(n) / rate * float64(time.Second))
	t.chargeCPU(d, t.m.spec.CPUSpeed)
}

func (t *Task) chargeCPU(d time.Duration, speed float64) {
	if d <= 0 {
		return
	}
	occ := time.Duration(float64(d) / speed)
	t.m.addCPUBusy(occ)
	t.cpuDebt += occ
	if t.cpuDebt >= t.lumpVirtual() {
		t.payCPU()
	}
}

// payCPU pays the accumulated CPU debt in bounded slices, releasing the CPU
// between slices so concurrent tasks time-share fairly (the slice is the
// larger of the spec quantum and the smallest slice the host timer can pay
// accurately).
func (t *Task) payCPU() {
	debt := t.cpuDebt
	t.cpuDebt = 0
	maxSlice := t.m.spec.Quantum
	if ms := time.Duration(float64(lumpWall) / t.m.scale); ms > maxSlice {
		maxSlice = ms
	}
	for debt > 0 {
		slice := maxSlice
		if slice > debt {
			slice = debt
		}
		slice += t.m.acquireCPU()
		t.m.sleepVirtual(slice)
		t.m.releaseCPU()
		debt -= maxSlice
	}
}

// DiskRead charges the transfer of n bytes plus seeks. Byte and seek counts
// are recorded immediately; occupancy is paid in lumps.
func (t *Task) DiskRead(n int64, seeks int) {
	d := time.Duration(float64(n) / t.m.spec.DiskBandwidth * float64(time.Second))
	d += time.Duration(seeks) * t.m.spec.DiskSeek
	t.m.recordDisk(n, int64(seeks), 0, d)
	t.diskDebt += d
	if t.diskDebt >= t.lumpVirtual() {
		t.payDisk()
	}
}

// DiskOpen charges one file-open overhead.
func (t *Task) DiskOpen() {
	t.m.recordDisk(0, 0, 1, t.m.spec.DiskOpen)
	t.diskDebt += t.m.spec.DiskOpen
	if t.diskDebt >= t.lumpVirtual() {
		t.payDisk()
	}
}

// payDisk occupies the disk for the accumulated debt.
func (t *Task) payDisk() {
	debt := t.diskDebt
	t.diskDebt = 0
	t.m.diskMu.Lock()
	// lint:ignore deadlockcheck sleeping under diskMu models the serialized
	// disk (see Machine.DiskRead); diskMu is a leaf in the lock order.
	t.m.sleepVirtual(debt)
	t.m.diskMu.Unlock()
}

// Occupy runs fn while holding a CPU token. Real (unscaled) computation in
// an experiment — the actual Go filter and raster work on the reduced data —
// takes wall time that is virtual time like any other; holding the token
// makes it occupy a simulated CPU so concurrent simulated work (the I/O
// thread's decode) cannot hide beneath it on a single-CPU machine. fn must
// not charge this task (payment would re-acquire the token).
func (t *Task) Occupy(fn func()) {
	t.m.acquireCPU()
	fn()
	t.m.releaseCPU()
}

// softFloor is the smallest wall-time debt worth its own sleep: paying less
// than the host timer floor would inflate rather than settle.
const softFloor = 2 * time.Millisecond

// Settle pays outstanding debts that are large enough to sleep accurately;
// smaller remainders are carried to the next charge or Flush. Call it at
// the end of fine-grained timed sections (individual read calls).
func (t *Task) Settle() {
	floor := time.Duration(float64(softFloor) / t.m.scale)
	if t.diskDebt >= floor {
		t.payDisk()
	}
	if t.cpuDebt >= floor {
		t.payCPU()
	}
}

// Flush pays all outstanding debt unconditionally. Call it at coarse
// accounting boundaries — the end of a unit read, the end of a snapshot,
// the end of a run — so deferred occupancy lands on the right side of the
// measurement.
func (t *Task) Flush() {
	if t.diskDebt > 0 {
		t.payDisk()
	}
	if t.cpuDebt > 0 {
		t.payCPU()
	}
}
