package platform

import (
	"sync"
	"testing"
	"time"
)

// testSpec is a fast, deterministic spec for unit tests.
func testSpec(ncpu int) Spec {
	return Spec{
		Name:          "test",
		NumCPU:        ncpu,
		CPUSpeed:      1.0,
		RenderSpeed:   2.0,
		DiskBandwidth: 100e6,
		DiskSeek:      10 * time.Millisecond,
		DiskOpen:      5 * time.Millisecond,
		DecodeRate:    50e6,
		Quantum:       5 * time.Millisecond,
		CtxSwitch:     0,
	}
}

// wallTime runs fn and returns its wall-clock duration.
func wallTime(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

// within checks d is in [lo, hi]; timing tests use wide tolerances so they
// stay robust on loaded hosts.
func within(t *testing.T, what string, d, lo, hi time.Duration) {
	t.Helper()
	if d < lo || d > hi {
		t.Fatalf("%s took %v, want within [%v, %v]", what, d, lo, hi)
	}
}

func TestComputeDuration(t *testing.T) {
	m := New(testSpec(1), 1.0)
	d := wallTime(func() { m.Compute(60 * time.Millisecond) })
	within(t, "Compute(60ms)", d, 50*time.Millisecond, 160*time.Millisecond)
	if got := m.CPUBusy(); got < 60*time.Millisecond {
		t.Fatalf("CPUBusy = %v, want >= 60ms", got)
	}
}

func TestComputeSpeedScaling(t *testing.T) {
	spec := testSpec(1)
	spec.CPUSpeed = 2.0 // twice as fast: 80ms of work takes 40ms
	m := New(spec, 1.0)
	d := wallTime(func() { m.Compute(80 * time.Millisecond) })
	within(t, "Compute at 2x speed", d, 30*time.Millisecond, 90*time.Millisecond)
}

func TestRenderSpeedSeparate(t *testing.T) {
	m := New(testSpec(1), 1.0) // RenderSpeed 2.0
	d := wallTime(func() { m.ComputeRender(80 * time.Millisecond) })
	within(t, "ComputeRender at 2x", d, 30*time.Millisecond, 90*time.Millisecond)
}

func TestTimeScale(t *testing.T) {
	m := New(testSpec(1), 0.1) // 10x faster than real time
	d := wallTime(func() { m.Compute(200 * time.Millisecond) })
	within(t, "Compute(200ms virtual at 0.1 scale)", d, 15*time.Millisecond, 80*time.Millisecond)
	if v := m.Virtual(20 * time.Millisecond); v != 200*time.Millisecond {
		t.Fatalf("Virtual(20ms) = %v, want 200ms", v)
	}
}

// Two tasks on one CPU must serialize (round-robin): combined wall time is
// about the sum of their demands. On two CPUs they run in parallel.
func TestCPUContention(t *testing.T) {
	run := func(ncpu int) time.Duration {
		m := New(testSpec(ncpu), 1.0)
		var wg sync.WaitGroup
		return wallTime(func() {
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					m.Compute(60 * time.Millisecond)
				}()
			}
			wg.Wait()
		})
	}
	serial := run(1)
	parallel := run(2)
	within(t, "2 tasks on 1 CPU", serial, 100*time.Millisecond, 250*time.Millisecond)
	within(t, "2 tasks on 2 CPUs", parallel, 50*time.Millisecond, 110*time.Millisecond)
	if parallel >= serial {
		t.Fatalf("no speedup from second CPU: 1cpu=%v 2cpu=%v", serial, parallel)
	}
}

// Disk transfers must not occupy a CPU: a compute task and a disk read on a
// one-CPU machine overlap fully.
func TestDiskOverlapsCompute(t *testing.T) {
	m := New(testSpec(1), 1.0)
	var wg sync.WaitGroup
	d := wallTime(func() {
		wg.Add(2)
		go func() { defer wg.Done(); m.Compute(80 * time.Millisecond) }()
		go func() { defer wg.Done(); m.DiskRead(8_000_000, 0) }() // 80ms at 100MB/s
		wg.Wait()
	})
	within(t, "compute||disk on 1 CPU", d, 70*time.Millisecond, 150*time.Millisecond)
}

// Two disk readers serialize on the single spindle.
func TestDiskSerializes(t *testing.T) {
	m := New(testSpec(2), 1.0)
	var wg sync.WaitGroup
	d := wallTime(func() {
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); m.DiskRead(5_000_000, 0) }() // 50ms each
			wg.Wait()
		}
	})
	within(t, "2 serialized disk reads", d, 95*time.Millisecond, 300*time.Millisecond)
	stats := m.Disk()
	if stats.Bytes != 10_000_000 {
		t.Fatalf("Disk.Bytes = %d, want 10000000", stats.Bytes)
	}
	if stats.Busy < 100*time.Millisecond {
		t.Fatalf("Disk.Busy = %v, want >= 100ms", stats.Busy)
	}
}

func TestDiskSeekAndOpenAccounting(t *testing.T) {
	m := New(testSpec(1), 0.1)
	m.DiskRead(1_000_000, 3)
	m.DiskOpen()
	s := m.Disk()
	if s.Seeks != 3 || s.Opens != 1 || s.Bytes != 1_000_000 {
		t.Fatalf("disk stats = %+v", s)
	}
	wantBusy := 10*time.Millisecond + 3*10*time.Millisecond + 5*time.Millisecond
	if s.Busy != wantBusy {
		t.Fatalf("Disk.Busy = %v, want %v", s.Busy, wantBusy)
	}
}

func TestDecodeChargesCPU(t *testing.T) {
	m := New(testSpec(1), 1.0)
	d := wallTime(func() { m.Decode(2_500_000) }) // 50ms at 50MB/s
	within(t, "Decode(2.5MB)", d, 40*time.Millisecond, 120*time.Millisecond)
	if m.Decode(0); m.CPUBusy() < 50*time.Millisecond {
		t.Fatalf("CPUBusy = %v after decode", m.CPUBusy())
	}
}

// The paper's key effect: on one CPU a background decode steals cycles from
// computation (they serialize); on two CPUs the decode hides behind it.
func TestDecodeContentionMatchesPaperEffect(t *testing.T) {
	run := func(ncpu int) time.Duration {
		m := New(testSpec(ncpu), 1.0)
		var wg sync.WaitGroup
		return wallTime(func() {
			wg.Add(2)
			go func() { defer wg.Done(); m.Compute(70 * time.Millisecond) }()
			go func() { defer wg.Done(); m.Decode(3_500_000) }() // 70ms of CPU
			wg.Wait()
		})
	}
	// Real wall-clock bounds on a host that is also running the rest of the
	// suite (go test runs package binaries in parallel) can stretch past
	// their budgets from scheduler latency alone; require one clean
	// measurement out of a few attempts rather than a single lucky one.
	var one, two time.Duration
	for try := 0; try < 4; try++ {
		one = run(1)
		two = run(2)
		if one >= 120*time.Millisecond && two <= 115*time.Millisecond {
			return
		}
	}
	if one < 120*time.Millisecond {
		t.Fatalf("decode hid behind compute on a single CPU: %v", one)
	}
	t.Fatalf("decode failed to hide on a dual CPU: %v", two)
}

func TestLoadStops(t *testing.T) {
	m := New(testSpec(2), 0.05)
	stop := m.Load()
	time.Sleep(20 * time.Millisecond)
	stop() // must return promptly and not leak the goroutine
	busy := m.CPUBusy()
	if busy == 0 {
		t.Fatal("load generator consumed no CPU")
	}
	time.Sleep(20 * time.Millisecond)
	if got := m.CPUBusy(); got != busy {
		t.Fatalf("load generator still running after stop: %v -> %v", busy, got)
	}
}

func TestElapsedUsesScale(t *testing.T) {
	m := New(testSpec(1), 0.01)
	time.Sleep(10 * time.Millisecond)
	if e := m.Elapsed(); e < 500*time.Millisecond {
		t.Fatalf("Elapsed = %v, want about 1s of virtual time", e)
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero scale did not panic")
		}
	}()
	New(testSpec(1), 0)
}
