// Package platform provides a scaled virtual-time machine model used to run
// the paper's experiments faithfully on any host. The paper evaluated GODIVA
// on two testbeds — Engle, a single-processor 2.0 GHz Pentium 4 workstation
// with an IDE disk, and a Turing cluster node with dual 1 GHz Pentium IIIs —
// and its headline contrast (25–38 % of I/O hidden on one CPU vs 81–91 % on
// two) is a scheduling effect: on one processor the I/O thread's CPU-side
// work steals cycles from computation, on two it runs on the idle processor.
//
// A Machine models N CPUs as a token semaphore with preemptive round-robin
// quanta and one disk as a serialized resource with seek and transfer costs.
// Tasks occupy these resources by sleeping in scaled wall time ("virtual
// time"), so contention, overlap and queueing behave like the real systems
// while an experiment runs in a fraction of real time on a host with any
// number of cores. GODIVA itself is ordinary concurrent Go code; only the
// experiment's read callbacks and compute phases charge time here.
package platform

import (
	"sync"
	"time"
)

// Spec describes a simulated platform.
type Spec struct {
	Name   string
	NumCPU int

	// CPUSpeed scales general computation: 1.0 is Engle's 2.0 GHz P4. A
	// task charging d of compute occupies a CPU for d/CPUSpeed.
	CPUSpeed float64

	// RenderSpeed scales the graphics pipeline separately. The paper notes
	// Turing's graphics software made its computation times "impressive
	// given its slower CPUs".
	RenderSpeed float64

	// DiskBandwidth is the sustained transfer rate in bytes per second.
	DiskBandwidth float64

	// DiskSeek is the cost of one seek (repositioning within or across
	// files); DiskOpen is the per-file open overhead.
	DiskSeek time.Duration
	DiskOpen time.Duration

	// DecodeRate is the CPU-side throughput of decoding scientific-format
	// files (bytes per second at CPUSpeed 1.0). The paper observed
	// "relatively low data transfer rates in accessing files written using
	// scientific data libraries such as HDF": much of the input cost is
	// this CPU work, which is exactly the part that cannot be hidden on a
	// single processor.
	DecodeRate float64

	// RawDecodeRate is the CPU-side throughput of reading plain binary
	// files (bytes per second at CPUSpeed 1.0): mostly memory copies, far
	// faster than scientific-format decoding. The paper: files written
	// with scientific data libraries "have at visualization time a higher
	// input cost than do plain binary files".
	RawDecodeRate float64

	// Quantum is the scheduler time slice for round-robin CPU sharing.
	Quantum time.Duration

	// CtxSwitch is charged each time a task had to wait for a CPU token,
	// modeling the context-switch cost the paper blames for the "medium"
	// test's noisier times.
	CtxSwitch time.Duration
}

// Engle models the paper's single-processor Dell Precision 340 workstation:
// 2.0 GHz Pentium 4, 1 GB RDRAM, 80 GB ATA-100 IDE 7200 RPM disk, ext2.
var Engle = Spec{
	Name:          "Engle",
	NumCPU:        1,
	CPUSpeed:      1.0,
	RenderSpeed:   1.0,
	DiskBandwidth: 38e6,
	DiskSeek:      3 * time.Millisecond,
	DiskOpen:      4 * time.Millisecond,
	DecodeRate:    20e6,
	RawDecodeRate: 150e6,
	Quantum:       20 * time.Millisecond,
	CtxSwitch:     60 * time.Microsecond,
}

// Turing models one node of the paper's Turing cluster: dual 1 GHz Pentium
// III, 2 GB memory, REISERFS, Myrinet. General compute is slower than Engle
// but the graphics path is faster (the node has graphics software Engle
// lacks).
var Turing = Spec{
	Name:          "Turing",
	NumCPU:        2,
	CPUSpeed:      0.55,
	RenderSpeed:   1.45,
	DiskBandwidth: 44e6,
	DiskSeek:      2500 * time.Microsecond,
	DiskOpen:      3 * time.Millisecond,
	DecodeRate:    20e6,
	RawDecodeRate: 150e6,
	Quantum:       20 * time.Millisecond,
	CtxSwitch:     50 * time.Microsecond,
}

// DiskStats aggregates the simulated disk's activity; the experiments use
// Bytes to report the paper's I/O-volume reductions.
type DiskStats struct {
	Bytes int64
	Seeks int64
	Opens int64
	Busy  time.Duration // virtual time the disk spent transferring/seeking
}

// Machine is one simulated platform instance. All methods are safe for
// concurrent use; tasks on different goroutines contend for the machine's
// CPUs and disk exactly as the paper's threads contended for Engle's and
// Turing's.
type Machine struct {
	spec  Spec
	scale float64 // wall seconds per virtual second (e.g. 0.02 = 50x speedup)

	cpu chan struct{} // token semaphore: one token per CPU

	diskMu sync.Mutex
	disk   DiskStats

	statMu  sync.Mutex
	cpuBusy time.Duration // virtual CPU time charged (all CPUs)

	start time.Time
}

// New creates a machine for the given spec running at the given time scale:
// wall-clock seconds consumed per virtual second. Scale 1.0 runs in real
// time; 0.02 runs fifty times faster. Scale must be positive.
func New(spec Spec, scale float64) *Machine {
	if scale <= 0 {
		panic("platform: non-positive time scale")
	}
	if spec.NumCPU < 1 {
		panic("platform: spec needs at least one CPU")
	}
	m := &Machine{
		spec:  spec,
		scale: scale,
		cpu:   make(chan struct{}, spec.NumCPU),
		start: time.Now(),
	}
	for i := 0; i < spec.NumCPU; i++ {
		m.cpu <- struct{}{}
	}
	return m
}

// Spec returns the machine's platform description.
func (m *Machine) Spec() Spec { return m.spec }

// Scale returns the wall-seconds-per-virtual-second factor.
func (m *Machine) Scale() float64 { return m.scale }

// sleepVirtual blocks for d of virtual time.
func (m *Machine) sleepVirtual(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * m.scale))
}

// Compute occupies one CPU for d of virtual time at CPUSpeed 1.0, scaled by
// the machine's CPU speed, in preemptive round-robin quanta. With more
// runnable tasks than CPUs, tasks interleave and each takes proportionally
// longer, as on a real timesharing kernel.
func (m *Machine) Compute(d time.Duration) {
	m.compute(d, m.spec.CPUSpeed)
}

// ComputeRender is Compute on the graphics path (scaled by RenderSpeed).
func (m *Machine) ComputeRender(d time.Duration) {
	m.compute(d, m.spec.RenderSpeed)
}

// Decode charges the CPU-side cost of decoding n bytes of scientific-format
// file data (the paper's HDF overhead). It runs on a CPU like any compute.
func (m *Machine) Decode(n int64) {
	if n <= 0 {
		return
	}
	d := time.Duration(float64(n) / m.spec.DecodeRate * float64(time.Second))
	m.compute(d, m.spec.CPUSpeed)
}

func (m *Machine) compute(d time.Duration, speed float64) {
	if d <= 0 {
		return
	}
	remaining := time.Duration(float64(d) / speed)
	m.addCPUBusy(remaining)
	for remaining > 0 {
		slice := m.spec.Quantum
		if slice > remaining {
			slice = remaining
		}
		slice += m.acquireCPU()
		m.sleepVirtual(slice)
		m.releaseCPU()
		remaining -= m.spec.Quantum
	}
}

// acquireCPU takes a CPU token, returning the context-switch penalty when
// the acquisition had to wait.
func (m *Machine) acquireCPU() time.Duration {
	select {
	case <-m.cpu:
		return 0
	default:
		<-m.cpu
		return m.spec.CtxSwitch
	}
}

func (m *Machine) releaseCPU() { m.cpu <- struct{}{} }

func (m *Machine) addCPUBusy(d time.Duration) {
	m.statMu.Lock()
	m.cpuBusy += d
	m.statMu.Unlock()
}

// recordDisk updates the disk counters without occupying the disk.
func (m *Machine) recordDisk(bytes, seeks, opens int64, busy time.Duration) {
	m.diskMu.Lock()
	m.disk.Bytes += bytes
	m.disk.Seeks += seeks
	m.disk.Opens += opens
	m.disk.Busy += busy
	m.diskMu.Unlock()
}

// DiskRead occupies the disk for the transfer of n bytes plus the given
// number of seeks. The disk is a single serialized resource: concurrent
// readers queue, as on the paper's single-spindle testbeds. Disk transfers
// do not occupy a CPU (DMA); callers charge Decode separately for the
// CPU-side share of input cost.
func (m *Machine) DiskRead(n int64, seeks int) {
	d := time.Duration(float64(n) / m.spec.DiskBandwidth * float64(time.Second))
	d += time.Duration(seeks) * m.spec.DiskSeek
	m.diskMu.Lock()
	m.disk.Bytes += n
	m.disk.Seeks += int64(seeks)
	m.disk.Busy += d
	// lint:ignore deadlockcheck sleeping under diskMu is the disk model:
	// the mutex IS the single spindle, and queueing behind it is the
	// contention the paper measured. diskMu is a leaf in the lock order.
	m.sleepVirtual(d)
	m.diskMu.Unlock()
}

// DiskOpen occupies the disk for one file-open overhead.
func (m *Machine) DiskOpen() {
	m.diskMu.Lock()
	m.disk.Opens++
	m.disk.Busy += m.spec.DiskOpen
	// lint:ignore deadlockcheck sleeping under diskMu models the serialized
	// disk (see DiskRead); diskMu is a leaf in the lock order.
	m.sleepVirtual(m.spec.DiskOpen)
	m.diskMu.Unlock()
}

// Disk returns a snapshot of the disk counters.
//
//godiva:noalloc
func (m *Machine) Disk() DiskStats {
	m.diskMu.Lock()
	defer m.diskMu.Unlock()
	return m.disk
}

// CPUBusy returns the total virtual CPU time charged so far.
//
//godiva:noalloc
func (m *Machine) CPUBusy() time.Duration {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	return m.cpuBusy
}

// Elapsed returns the virtual time since the machine was created.
func (m *Machine) Elapsed() time.Duration {
	return time.Duration(float64(time.Since(m.start)) / m.scale)
}

// Virtual converts a wall-clock duration measured while this machine ran
// into virtual time.
func (m *Machine) Virtual(wall time.Duration) time.Duration {
	return time.Duration(float64(wall) / m.scale)
}

// Load runs a compute-intensive competing process (the paper's TG1
// configuration ran one alongside Voyager to occupy the second processor).
// It queues for the CPU like any thread but runs at a duty cycle below
// 100%, the effective share a pure spinner gets from a timesharing kernel
// once the scheduler's dynamic priorities boost the sleep-heavy threads
// (the main thread between waits, the I/O thread after disk transfers). The
// result is the paper's TG1 behavior: Voyager's computation visibly slows,
// while the I/O thread still keeps up and hiding survives.
func (m *Machine) Load() (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	slice := m.spec.Quantum
	if ms := time.Duration(1.5e6 / m.scale); ms > slice { // >= 1.5ms of wall
		slice = ms
	}
	go func() {
		defer close(exited)
		for {
			select {
			case <-done:
				return
			default:
			}
			<-m.cpu
			m.sleepVirtual(slice)
			m.cpu <- struct{}{}
			m.addCPUBusy(slice)
			// Off-CPU pause: the spinner's lost share of the machine.
			m.sleepVirtual(slice / 2)
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}
