package platform

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentMachineCounters hammers the diskMu and statMu paths from
// many goroutines at a tiny time scale — disk reads and opens (which sleep
// while holding diskMu, modeling the serialized spindle), compute (statMu
// via addCPUBusy), and the Disk/CPUBusy snapshot methods — with a Load
// spinner running throughout. Run under -race (verify.sh race-platform
// stage) it checks the mutexes actually cover every counter access; the
// final totals check that no update was lost.
func TestConcurrentMachineCounters(t *testing.T) {
	const (
		workers   = 8
		iters     = 25
		readBytes = 512
	)
	m := New(Engle, 0.0005)
	stop := m.Load()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.DiskRead(readBytes, 1)
				m.DiskOpen()
				m.Compute(50 * time.Microsecond)
				m.Decode(1000)
				if ds := m.Disk(); ds.Bytes < 0 {
					t.Error("negative disk bytes")
				}
				if m.CPUBusy() < 0 {
					t.Error("negative cpu busy")
				}
			}
		}()
	}
	wg.Wait()
	stop()

	ds := m.Disk()
	const ops = workers * iters
	if got, want := ds.Bytes, int64(ops*readBytes); got != want {
		t.Errorf("disk bytes = %d, want %d", got, want)
	}
	if got, want := ds.Seeks, int64(ops); got != want {
		t.Errorf("disk seeks = %d, want %d", got, want)
	}
	if got, want := ds.Opens, int64(ops); got != want {
		t.Errorf("disk opens = %d, want %d", got, want)
	}
	if ds.Busy <= 0 {
		t.Errorf("disk busy = %v, want > 0", ds.Busy)
	}
	if m.CPUBusy() <= 0 {
		t.Errorf("cpu busy = %v, want > 0", m.CPUBusy())
	}
}
