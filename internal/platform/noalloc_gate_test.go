// AllocsPerRun gates for this package's //godiva:noalloc functions (see
// internal/noalloctest). Excluded under -race, whose instrumented runtime
// makes allocation counts meaningless.

//go:build !race

package platform

import (
	"testing"
	"time"

	"godiva/internal/noalloctest"
)

func TestNoAllocGates(t *testing.T) {
	m := New(Engle, 0.001)
	var (
		ds DiskStats
		d  time.Duration
	)
	noalloctest.Check(t, ".", map[string]func(){
		"Machine.Disk": func() {
			ds = m.Disk()
		},
		"Machine.CPUBusy": func() {
			d = m.CPUBusy()
		},
	})
	if ds.Bytes != 0 || ds.Opens != 0 || d != 0 {
		t.Errorf("idle machine reported activity: disk %+v, cpu %v", ds, d)
	}
}
