// Fluid2d reproduces the paper's running example end to end: the Table 1
// record type for a fluid dynamics simulation on structured 2-D mesh
// blocks, the Figure 2 record instance (a 100x100 block with 101
// coordinates per direction), and the example query of §3.1 — "give me the
// address of the pressure data buffer of the block with ID block_0003 from
// the time-step with ID 0.000075".
//
// Run with: go run ./examples/fluid2d
package main

import (
	"fmt"
	"log"

	"godiva"
	"godiva/internal/mesh"
	"godiva/internal/render"
	"godiva/internal/vis"
)

func main() {
	db := godiva.Open(godiva.Options{MemoryLimit: 128 << 20, BackgroundIO: false})
	defer db.Close()

	// Table 1: six field types, the first two of known size, the arrays
	// UNKNOWN until the input data files are read.
	must(db.DefineField("block id", godiva.String, 11))
	must(db.DefineField("time-step id", godiva.String, 9))
	must(db.DefineField("x coordinates", godiva.Float64, godiva.Unknown))
	must(db.DefineField("y coordinates", godiva.Float64, godiva.Unknown))
	must(db.DefineField("pressure", godiva.Float64, godiva.Unknown))
	must(db.DefineField("temperature", godiva.Float64, godiva.Unknown))

	// The record type has two key fields (block ID and time-step ID).
	must(db.DefineRecordType("fluid", 2))
	must(db.InsertField("fluid", "block id", true))
	must(db.InsertField("fluid", "time-step id", true))
	must(db.InsertField("fluid", "x coordinates", false))
	must(db.InsertField("fluid", "y coordinates", false))
	must(db.InsertField("fluid", "pressure", false))
	must(db.InsertField("fluid", "temperature", false))
	must(db.CommitRecordType("fluid"))

	// Store a few blocks for a few time steps: each is the Figure 2
	// instance, a 100x100 structured block with element-based pressure and
	// temperature.
	steps := []string{"0.000025", "0.000050", "0.000075"}
	for _, step := range steps {
		for b := 1; b <= 4; b++ {
			storeBlock(db, fmt.Sprintf("block_%04d", b), step)
		}
	}
	n, err := db.CountRecords("fluid")
	must(err)
	fmt.Printf("committed %d fluid records\n", n)

	// The paper's example query.
	buf, err := db.GetFieldBuffer("fluid", "pressure", "block_0003", "0.000075")
	if err != nil {
		log.Fatal(err)
	}
	p, err := buf.Float64s()
	must(err)
	fmt.Printf("pressure buffer of block_0003 @ 0.000075: %d values, %d bytes (Figure 2: 80000)\n",
		len(p), buf.Size())

	// The database returns the live buffer: the code reads and writes it
	// directly, as if it were a user-allocated array.
	size, err := db.GetFieldBufferSize("fluid", "x coordinates", "block_0003", "0.000075")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x-coordinate buffer size: %d bytes (Figure 2: 808)\n", size)

	// Compute something real from queried buffers: the pressure force on
	// each block's bottom boundary at the last time step.
	for b := 1; b <= 4; b++ {
		id := fmt.Sprintf("block_%04d", b)
		force := bottomForce(db, id, "0.000075")
		fmt.Printf("%s: bottom-edge pressure force %.1f N/m\n", id, force)
	}

	// Render the block's temperature field through the structured-grid
	// path, straight from the queried buffers.
	if err := renderBlock(db, "block_0001", "0.000075", "fluid2d.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote fluid2d.png")
}

// renderBlock rebuilds the structured block from its coordinate buffers and
// renders its temperature field.
func renderBlock(db *godiva.DB, blockID, stepID, out string) error {
	xbuf, err := db.GetFieldBuffer("fluid", "x coordinates", blockID, stepID)
	must(err)
	ybuf, err := db.GetFieldBuffer("fluid", "y coordinates", blockID, stepID)
	must(err)
	tbuf, err := db.GetFieldBuffer("fluid", "temperature", blockID, stepID)
	must(err)
	x, err := xbuf.Float64s()
	must(err)
	y, err := ybuf.Float64s()
	must(err)
	temp, err := tbuf.Float64s()
	must(err)
	grid := &mesh.StructuredBlock2D{NX: len(x) - 1, NY: len(y) - 1, XCoords: x, YCoords: y}
	surf, err := vis.Structured2DSurface(grid, temp)
	if err != nil {
		return err
	}
	lo, hi := vis.ScalarRange(surf.Scalars)
	r := render.NewRenderer(480, 480)
	cam := render.Camera{
		Eye:    mesh.Vec3{X: 0.5, Y: 0.5, Z: -1.6},
		LookAt: mesh.Vec3{X: 0.5, Y: 0.5, Z: 0},
		Up:     mesh.Vec3{Y: 1}, FOVDegrees: 40, Near: 0.1, Far: 10,
	}
	if err := r.DrawSurface(surf, cam, render.Rainbow{}, lo, hi); err != nil {
		return err
	}
	r.DrawColorbar(render.Rainbow{})
	return r.WritePNG(out)
}

// storeBlock builds one 100x100 block and commits its record.
func storeBlock(db *godiva.DB, blockID, stepID string) {
	grid := mesh.UniformBlock2D(100, 100, 0, 1, 0, 1)
	rec, err := db.NewRecord("fluid")
	must(err)
	must(rec.SetString("block id", blockID))
	must(rec.SetString("time-step id", stepID))
	fill := func(field string, values []float64) {
		buf, err := rec.AllocFieldBuffer(field, 8*len(values))
		must(err)
		dst, err := buf.Float64s()
		must(err)
		copy(dst, values)
	}
	fill("x coordinates", grid.XCoords)
	fill("y coordinates", grid.YCoords)
	pressure := make([]float64, grid.NumElements())
	temperature := make([]float64, grid.NumElements())
	for j := 0; j < grid.NY; j++ {
		for i := 0; i < grid.NX; i++ {
			x := (grid.XCoords[i] + grid.XCoords[i+1]) / 2
			y := (grid.YCoords[j] + grid.YCoords[j+1]) / 2
			pressure[j*grid.NX+i] = 2e6 * (1 - 0.3*y) * (1 + 0.05*x)
			temperature[j*grid.NX+i] = 300 + 2600*(1-y)
		}
	}
	fill("pressure", pressure)
	fill("temperature", temperature)
	must(db.CommitRecord(rec))
}

// bottomForce integrates pressure over the block's bottom edge using the
// buffers exactly where the database stores them.
func bottomForce(db *godiva.DB, blockID, stepID string) float64 {
	xbuf, err := db.GetFieldBuffer("fluid", "x coordinates", blockID, stepID)
	must(err)
	pbuf, err := db.GetFieldBuffer("fluid", "pressure", blockID, stepID)
	must(err)
	x, err := xbuf.Float64s()
	must(err)
	p, err := pbuf.Float64s()
	must(err)
	nx := len(x) - 1
	var force float64
	for i := 0; i < nx; i++ {
		force += p[i] * (x[i+1] - x[i])
	}
	return force
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
