// Quickstart: the GODIVA batch-mode pattern from paper §3.3 in 80 lines.
//
// Two "input files" (generated on the fly) are registered as processing
// units; the multi-thread GODIVA library prefetches them in the background
// through our read function while the main thread processes each unit and
// deletes it when done.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"godiva"
	"godiva/internal/shdf"
)

func main() {
	dir, err := os.MkdirTemp("", "godiva-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Write two small SHDF input files, each holding one pressure array.
	for i, n := range []int{64, 128} {
		w, err := shdf.Create(inputFile(dir, i))
		if err != nil {
			log.Fatal(err)
		}
		data := make([]float64, n)
		for j := range data {
			data[j] = 101325 + 500*math.Sin(float64(i+1)*float64(j)/8)
		}
		if _, err := w.WriteSDS("pressure", []int{n}, data); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// The GBO of the paper: 64 MB of database memory, background I/O on.
	db := godiva.Open(godiva.Options{MemoryLimit: 64 << 20, BackgroundIO: true})
	defer db.Close()

	// Schema: records keyed by file name, holding one pressure buffer of
	// initially unknown size (Table 1's UNKNOWN).
	must(db.DefineField("file", godiva.String, 32))
	must(db.DefineField("pressure", godiva.Float64, godiva.Unknown))
	must(db.DefineRecordType("sample", 1))
	must(db.InsertField("sample", "file", true))
	must(db.InsertField("sample", "pressure", false))
	must(db.CommitRecordType("sample"))

	// The developer-supplied read function: GODIVA passes the unit name
	// back so one function serves every unit (paper §3.3, footnote 3).
	readFile := func(u *godiva.Unit) error {
		f, err := shdf.Open(filepath.Join(dir, u.Name()))
		if err != nil {
			return err
		}
		defer f.Close()
		info, err := f.FindByName(shdf.TagSDS, "pressure")
		if err != nil {
			return err
		}
		ds, err := f.ReadSDS(info.Ref)
		if err != nil {
			return err
		}
		rec, err := u.NewRecord("sample")
		if err != nil {
			return err
		}
		if err := rec.SetString("file", u.Name()); err != nil {
			return err
		}
		buf, err := rec.AllocFieldBuffer("pressure", 8*len(ds.Float64s))
		if err != nil {
			return err
		}
		dst, err := buf.Float64s()
		if err != nil {
			return err
		}
		copy(dst, ds.Float64s)
		return u.DB().CommitRecord(rec)
	}

	// Batch mode: add all units up front, then wait / process / delete.
	units := []string{filepath.Base(inputFile(dir, 0)), filepath.Base(inputFile(dir, 1))}
	for _, name := range units {
		must(db.AddUnit(name, readFile))
	}
	for _, name := range units {
		must(db.WaitUnit(name))
		buf, err := db.GetFieldBuffer("sample", "pressure", name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := buf.Float64s()
		must(err)
		lo, hi := p[0], p[0]
		for _, v := range p {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		fmt.Printf("%s: %d pressure values in [%.0f, %.0f] Pa\n", name, len(p), lo, hi)
		must(db.DeleteUnit(name)) // batch mode: not needed again
	}
	s := db.Stats()
	fmt.Printf("GODIVA: %d units read (%d in the background), peak memory %d bytes\n",
		s.UnitsRead, s.UnitsPrefetched, s.PeakBytes)
}

func inputFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("input_%d.shdf", i))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
