// Flowviz demonstrates vector-field visualization on GODIVA-managed data:
// it reads one snapshot's velocity field through the database, integrates
// streamlines through the propellant grain, adds vector glyphs, and renders
// them over the cut-away geometry with a color legend.
//
// Run with: go run ./examples/flowviz
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"godiva"
	"godiva/internal/core"
	"godiva/internal/genx"
	"godiva/internal/mesh"
	"godiva/internal/render"
	"godiva/internal/vis"
)

func main() {
	work, err := os.MkdirTemp("", "godiva-flowviz-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	spec := genx.Scaled(8)
	spec.Snapshots = 2
	dataDir := filepath.Join(work, "data")
	fmt.Println("writing dataset…")
	if _, err := genx.WriteDataset(spec, dataDir); err != nil {
		log.Fatal(err)
	}

	db := godiva.Open(godiva.Options{BackgroundIO: true})
	defer db.Close()
	if err := defineSchema(db); err != nil {
		log.Fatal(err)
	}
	if err := db.ReadUnit("snap_0000", makeReadFunc(spec, dataDir)); err != nil {
		log.Fatal(err)
	}

	// Assemble the whole grain from the per-block records in the database,
	// remapping through global node IDs.
	grain, vel := assemble(db, spec)
	fmt.Printf("assembled %d nodes, %d elements\n", grain.NumNodes(), grain.NumCells())

	// Streamlines seeded across the grain inlet.
	seeds := vis.SeedLine(
		mesh.Vec3{X: 0.8, Y: 0, Z: 0.1},
		mesh.Vec3{X: 1.45, Y: 0, Z: 0.1},
		8,
	)
	lines, err := vis.Streamlines(grain, vel, seeds, vis.StreamlineOptions{MaxSteps: 4000, Both: true})
	if err != nil {
		log.Fatal(err)
	}
	glyphs, err := vis.VectorGlyphs(grain, vel, 97, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d streamlines (%d points), %d glyphs\n",
		lines.NumLines(), lines.NumPoints(), glyphs.NumLines())

	// Render: cut-away surface colored by speed, lines on top, legend.
	speed := vis.VectorMagnitude(vel)
	blo, bhi := grain.Bounds()
	pl := vis.Plane{Origin: mesh.Vec3{}, Normal: mesh.Vec3{Y: -1}} // keep y < 0
	surf, err := vis.CutPlane(grain, pl, speed)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := vis.ScalarRange(speed)
	r := render.NewRenderer(640, 480)
	cam := render.DefaultCamera(blo, bhi)
	if err := r.DrawSurface(surf, cam, render.Grayscale{}, lo, hi); err != nil {
		log.Fatal(err)
	}
	if err := r.DrawLines(lines, cam, render.Rainbow{}, lo, hi); err != nil {
		log.Fatal(err)
	}
	if err := r.DrawLines(glyphs, cam, render.Rainbow{}, lo, hi); err != nil {
		log.Fatal(err)
	}
	r.DrawColorbar(render.Rainbow{})
	out := "flowviz.png"
	if err := r.WritePNG(out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", out)
}

// assemble rebuilds the global mesh and velocity field from block records,
// merging duplicated boundary nodes via global IDs.
func assemble(db *godiva.DB, spec genx.Spec) (*mesh.TetMesh, []float64) {
	grain := &mesh.TetMesh{}
	var vel []float64
	globalToLocal := map[int64]int32{}
	stepID := spec.StepID(0)
	for b := 0; b < spec.Blocks; b++ {
		id := genx.BlockID(b)
		coords := float64s(db, "coords", id, stepID)
		blockVel := float64s(db, "velocity", id, stepID)
		connBuf, err := db.GetFieldBuffer("block", "conn", id, stepID)
		must(err)
		conn, err := connBuf.Int32s()
		must(err)
		gidBuf, err := db.GetFieldBuffer("block", "gids", id, stepID)
		must(err)
		gids, err := gidBuf.Int64s()
		must(err)
		local := make([]int32, len(gids))
		for i, g := range gids {
			li, ok := globalToLocal[g]
			if !ok {
				li = int32(grain.NumNodes())
				globalToLocal[g] = li
				grain.Coords = append(grain.Coords, coords[3*i], coords[3*i+1], coords[3*i+2])
				vel = append(vel, blockVel[3*i], blockVel[3*i+1], blockVel[3*i+2])
			}
			local[i] = li
		}
		for _, n := range conn {
			grain.Tets = append(grain.Tets, local[n])
		}
	}
	return grain, vel
}

func float64s(db *godiva.DB, field, blockID, stepID string) []float64 {
	buf, err := db.GetFieldBuffer("block", field, blockID, stepID)
	must(err)
	v, err := buf.Float64s()
	must(err)
	return v
}

func defineSchema(db *godiva.DB) error {
	for _, f := range []struct {
		name string
		typ  godiva.DataType
		size int
	}{
		{"block id", godiva.String, 11},
		{"time-step id", godiva.String, 9},
		{"coords", godiva.Float64, godiva.Unknown},
		{"conn", godiva.Int32, godiva.Unknown},
		{"gids", godiva.Int64, godiva.Unknown},
		{"velocity", godiva.Float64, godiva.Unknown},
	} {
		if err := db.DefineField(f.name, f.typ, f.size); err != nil {
			return err
		}
	}
	if err := db.DefineRecordType("block", 2); err != nil {
		return err
	}
	for _, f := range []string{"block id", "time-step id", "coords", "conn", "gids", "velocity"} {
		if err := db.InsertField("block", f, f == "block id" || f == "time-step id"); err != nil {
			return err
		}
	}
	return db.CommitRecordType("block")
}

func makeReadFunc(spec genx.Spec, dir string) godiva.ReadFunc {
	return func(u *core.Unit) error {
		var step int
		if _, err := fmt.Sscanf(u.Name(), "snap_%d", &step); err != nil {
			return err
		}
		reader := &genx.Reader{}
		for _, path := range spec.SnapshotFiles(dir, step) {
			h, err := reader.Open(path)
			if err != nil {
				return err
			}
			for _, e := range h.Blocks() {
				bd, err := h.ReadBlock(e, []string{"velocity"})
				if err != nil {
					h.Close()
					return err
				}
				rec, err := u.NewRecord("block")
				if err != nil {
					h.Close()
					return err
				}
				must(rec.SetString("block id", bd.Name))
				must(rec.SetString("time-step id", bd.StepID))
				fill := func(field string, n int, cp func(dst *godiva.Buffer)) {
					buf, err := rec.AllocFieldBuffer(field, n)
					must(err)
					cp(buf)
				}
				fill("coords", 8*len(bd.Mesh.Coords), func(b *godiva.Buffer) {
					dst, err := b.Float64s()
					must(err)
					copy(dst, bd.Mesh.Coords)
				})
				fill("conn", 4*len(bd.Mesh.Tets), func(b *godiva.Buffer) {
					dst, err := b.Int32s()
					must(err)
					copy(dst, bd.Mesh.Tets)
				})
				fill("gids", 8*len(bd.Mesh.GlobalNode), func(b *godiva.Buffer) {
					dst, err := b.Int64s()
					must(err)
					copy(dst, bd.Mesh.GlobalNode)
				})
				fill("velocity", 8*len(bd.Node["velocity"]), func(b *godiva.Buffer) {
					dst, err := b.Float64s()
					must(err)
					copy(dst, bd.Node["velocity"])
				})
				if err := u.DB().CommitRecord(rec); err != nil {
					h.Close()
					return err
				}
			}
			if err := h.Close(); err != nil {
				return err
			}
		}
		return nil
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
