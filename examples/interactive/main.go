// Interactive replays the paper's interactive-mode scenario (§1, §3.2): a
// user browsing a time series cannot be predicted, so the tool issues
// explicit blocking ReadUnit calls, marks processed units "finished"
// instead of deleting them — hoping the user revisits data still in the
// database — and lets GODIVA's LRU caching under a memory cap do the rest.
//
// The replayed session flips back and forth between two snapshots ("users
// may frequently switch back and forth between snapshot images from two
// different time-steps to observe the changes"), then sweeps the whole
// series. The cache turns every revisit into a hit until memory pressure
// evicts the least recently used snapshot.
//
// Run with: go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"godiva"
	"godiva/internal/core"
	"godiva/internal/genx"
)

func main() {
	work, err := os.MkdirTemp("", "godiva-interactive-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	spec := genx.Scaled(16)
	spec.Snapshots = 6
	dataDir := filepath.Join(work, "data")
	fmt.Println("writing snapshot series…")
	if _, err := genx.WriteDataset(spec, dataDir); err != nil {
		log.Fatal(err)
	}

	// Size the database to hold about three snapshots, so the session
	// exercises both cache hits and LRU evictions.
	unitBytes := estimateUnitBytes(spec, dataDir)
	db := godiva.Open(godiva.Options{MemoryLimit: 3*unitBytes + unitBytes/2})
	defer db.Close()
	if err := defineSchema(db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database memory: %.1f MB (about 3 snapshots)\n\n", float64(db.MemLimit())/1e6)

	readSnapshot := makeReadFunc(spec, dataDir)

	// The user's (unpredictable) browsing: compare steps 1 and 2 a few
	// times, then look through the rest of the series.
	session := []int{1, 2, 1, 2, 1, 0, 3, 4, 5, 1}
	for _, step := range session {
		name := fmt.Sprintf("snap_%04d", step)
		before := db.Stats()
		if err := db.ReadUnit(name, readSnapshot); err != nil {
			log.Fatal(err)
		}
		after := db.Stats()
		view(db, spec, step)
		// Finished, not deleted: the user may come back.
		if err := db.FinishUnit(name); err != nil {
			log.Fatal(err)
		}
		how := "read from disk"
		if after.CacheHits > before.CacheHits {
			how = "cache hit"
		}
		fmt.Printf("view step %d: %-14s (resident %4.1f MB, evictions %d)\n",
			step, how, float64(db.MemUsed())/1e6, after.UnitsEvicted)
	}

	s := db.Stats()
	fmt.Printf("\nsession: %d views, %d disk reads, %d cache hits, %d evictions\n",
		len(session), s.UnitsRead, s.CacheHits, s.UnitsEvicted)
	if s.CacheHits == 0 {
		log.Fatal("expected cache hits in this session")
	}
}

// view pretends to render step: it queries one block's temperature buffer
// and reports its range, touching the data the way a renderer would.
func view(db *godiva.DB, spec genx.Spec, step int) {
	buf, err := db.GetFieldBuffer("block", "temperature", genx.BlockID(0), spec.StepID(step))
	if err != nil {
		log.Fatal(err)
	}
	t, err := buf.Float64s()
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := t[0], t[0]
	for _, v := range t {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < lo {
		log.Fatalf("impossible temperature range [%g, %g]", lo, hi)
	}
}

// defineSchema declares the block record type (keys: block ID, step ID).
func defineSchema(db *godiva.DB) error {
	fields := []struct {
		name string
		typ  godiva.DataType
		size int
	}{
		{"block id", godiva.String, 11},
		{"time-step id", godiva.String, 9},
		{"temperature", godiva.Float64, godiva.Unknown},
		{"stress_avg", godiva.Float64, godiva.Unknown},
	}
	for _, f := range fields {
		if err := db.DefineField(f.name, f.typ, f.size); err != nil {
			return err
		}
	}
	if err := db.DefineRecordType("block", 2); err != nil {
		return err
	}
	for _, f := range fields {
		if err := db.InsertField("block", f.name, f.size != godiva.Unknown); err != nil {
			return err
		}
	}
	return db.CommitRecordType("block")
}

// makeReadFunc reads one snapshot's element scalars into the database.
func makeReadFunc(spec genx.Spec, dir string) godiva.ReadFunc {
	return func(u *core.Unit) error {
		var step int
		if _, err := fmt.Sscanf(u.Name(), "snap_%d", &step); err != nil {
			return err
		}
		reader := &genx.Reader{}
		for _, path := range spec.SnapshotFiles(dir, step) {
			h, err := reader.Open(path)
			if err != nil {
				return err
			}
			for _, e := range h.Blocks() {
				bd, err := h.ReadBlock(e, []string{"temperature", "stress_avg"})
				if err != nil {
					h.Close()
					return err
				}
				rec, err := u.NewRecord("block")
				if err != nil {
					h.Close()
					return err
				}
				if err := rec.SetString("block id", bd.Name); err != nil {
					h.Close()
					return err
				}
				if err := rec.SetString("time-step id", bd.StepID); err != nil {
					h.Close()
					return err
				}
				for field, data := range bd.Elem {
					buf, err := rec.AllocFieldBuffer(field, 8*len(data))
					if err != nil {
						h.Close()
						return err
					}
					dst, err := buf.Float64s()
					if err != nil {
						h.Close()
						return err
					}
					copy(dst, data)
				}
				if err := u.DB().CommitRecord(rec); err != nil {
					h.Close()
					return err
				}
			}
			if err := h.Close(); err != nil {
				return err
			}
		}
		return nil
	}
}

// estimateUnitBytes sizes one snapshot's in-database footprint by reading
// the first one.
func estimateUnitBytes(spec genx.Spec, dir string) int64 {
	probe := godiva.Open(godiva.Options{})
	defer probe.Close()
	if err := defineSchema(probe); err != nil {
		log.Fatal(err)
	}
	if err := probe.ReadUnit("snap_0000", makeReadFunc(spec, dir)); err != nil {
		log.Fatal(err)
	}
	return probe.MemUsed()
}
