// Batchmovie is the paper's batch-processing scenario in full: generate a
// small GENx dataset, then run the GODIVA-based Voyager over every snapshot
// with background prefetching, producing a numbered PNG frame sequence
// ready for animation — the workflow of "a visualization tool that
// processes a series of time-step snapshots to make pictures or movies".
//
// Run with: go run ./examples/batchmovie
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"godiva/internal/genx"
	"godiva/internal/rocketeer"
)

func main() {
	work, err := os.MkdirTemp("", "godiva-batchmovie-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// A small dataset: 8 time steps of the burning-grain simulation.
	spec := genx.Scaled(16)
	spec.Snapshots = 8
	dataDir := filepath.Join(work, "data")
	fmt.Println("writing snapshot series…")
	if _, err := genx.WriteDataset(spec, dataDir); err != nil {
		log.Fatal(err)
	}

	// Voyager in its multi-thread GODIVA build: all snapshots are added as
	// units up front, prefetched in the background, processed in order and
	// deleted after their frames are rendered.
	frames := "frames"
	res, err := rocketeer.Run(rocketeer.VersionTG, rocketeer.Config{
		Test:     movieTest(),
		Spec:     spec,
		Dir:      dataDir,
		ImageDir: frames,
		Width:    480,
		Height:   360,
	})
	if err != nil {
		log.Fatal(err)
	}

	entries, err := os.ReadDir(frames)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	fmt.Printf("rendered %d frames into %s/:\n", res.Images, frames)
	for _, n := range names {
		fmt.Println(" ", n)
	}
	fmt.Printf("total %v, visible I/O %v (%d units prefetched in the background)\n",
		res.Total.Round(1e6), res.VisibleIO.Round(1e6), res.DB.UnitsPrefetched)
}

// movieTest renders one temperature frame per snapshot: the view a
// propulsion engineer would animate to watch the bore heat up.
func movieTest() rocketeer.VisTest {
	return rocketeer.VisTest{
		Name: "movie",
		Vars: []string{"temperature"},
		Ops: []rocketeer.Op{
			{Kind: rocketeer.OpCut, Var: "temperature", PlaneFrac: 0.5},
		},
	}
}
