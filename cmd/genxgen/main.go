// Command genxgen generates a synthetic GENx rocket-simulation dataset: a
// partitioned tetrahedral mesh of a solid-propellant grain with
// time-evolving physics fields, written as one SHDF file series per
// snapshot, shaped like the data the paper's Voyager visualizes.
//
// Usage:
//
//	genxgen -out data/ [-scale 8] [-snapshots 32] [-blocks 120] [-files 8]
//
// -scale divides the full-size mesh (about 96,600 nodes and 460,800
// elements) for quick experiments; -scale 1 writes the full dataset.
package main

import (
	"flag"
	"fmt"
	"os"

	"godiva/internal/genx"
)

func main() {
	var (
		out       = flag.String("out", "genx-data", "output directory")
		scale     = flag.Int("scale", 8, "mesh reduction factor (1 = full size)")
		snapshots = flag.Int("snapshots", 0, "snapshot count (0 = spec default)")
		blocks    = flag.Int("blocks", 0, "partition blocks (0 = spec default)")
		files     = flag.Int("files", 0, "files per snapshot (0 = spec default)")
	)
	flag.Parse()

	spec := genx.Scaled(*scale)
	if *snapshots > 0 {
		spec.Snapshots = *snapshots
	}
	if *blocks > 0 {
		spec.Blocks = *blocks
	}
	if *files > 0 {
		spec.FilesPerSnapshot = *files
	}
	cells := 6 * spec.Mesh.NR * spec.Mesh.NTheta * spec.Mesh.NZ
	fmt.Printf("generating %d snapshots x %d files: %d blocks, %d elements\n",
		spec.Snapshots, spec.FilesPerSnapshot, spec.Blocks, cells)
	blocksOut, err := genx.WriteDataset(spec, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genxgen:", err)
		os.Exit(1)
	}
	nodes := 0
	for _, b := range blocksOut {
		nodes += b.NumNodes()
	}
	fmt.Printf("wrote %s: %d block meshes, %d nodes total (with boundary duplication)\n",
		*out, len(blocksOut), nodes)
}
