// Command genxgen generates a synthetic GENx rocket-simulation dataset: a
// partitioned tetrahedral mesh of a solid-propellant grain with
// time-evolving physics fields, written as one SHDF file series per
// snapshot, shaped like the data the paper's Voyager visualizes.
//
// Usage:
//
//	genxgen -out data/ [-scale 8] [-snapshots 32] [-blocks 120] [-files 8]
//
// -scale divides the full-size mesh (about 96,600 nodes and 460,800
// elements) for quick experiments; -scale 1 writes the full dataset.
//
// With -stream the dataset is not written locally: genxgen becomes a live
// producer, pushing one snapshot file at a time to an ingest-enabled
// godivad server (see godivad -ingest), paced by -interval:
//
//	genxgen -stream 127.0.0.1:7144 -scale 8 -interval 100ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"godiva/internal/genx"
	"godiva/internal/remote"
)

func main() {
	var (
		out       = flag.String("out", "genx-data", "output directory")
		scale     = flag.Int("scale", 8, "mesh reduction factor (1 = full size)")
		snapshots = flag.Int("snapshots", 0, "snapshot count (0 = spec default)")
		blocks    = flag.Int("blocks", 0, "partition blocks (0 = spec default)")
		files     = flag.Int("files", 0, "files per snapshot (0 = spec default)")
		stream    = flag.String("stream", "", "godivad address: push snapshots live instead of writing -out")
		interval  = flag.Duration("interval", 0, "pause between streamed snapshot files")
	)
	flag.Parse()

	spec := genx.Scaled(*scale)
	if *snapshots > 0 {
		spec.Snapshots = *snapshots
	}
	if *blocks > 0 {
		spec.Blocks = *blocks
	}
	if *files > 0 {
		spec.FilesPerSnapshot = *files
	}
	cells := 6 * spec.Mesh.NR * spec.Mesh.NTheta * spec.Mesh.NZ
	fmt.Printf("generating %d snapshots x %d files: %d blocks, %d elements\n",
		spec.Snapshots, spec.FilesPerSnapshot, spec.Blocks, cells)
	if *stream != "" {
		if err := streamTo(*stream, spec, *interval); err != nil {
			fmt.Fprintln(os.Stderr, "genxgen:", err)
			os.Exit(1)
		}
		return
	}
	blocksOut, err := genx.WriteDataset(spec, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genxgen:", err)
		os.Exit(1)
	}
	nodes := 0
	for _, b := range blocksOut {
		nodes += b.NumNodes()
	}
	fmt.Printf("wrote %s: %d block meshes, %d nodes total (with boundary duplication)\n",
		*out, len(blocksOut), nodes)
}

// streamTo pushes the dataset to an ingest-enabled godivad, one snapshot
// file per OpIngest, pacing each file by interval.
func streamTo(addr string, spec genx.Spec, interval time.Duration) error {
	cli := remote.NewClient(remote.ClientOptions{Addr: addr})
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		return err
	}
	start := time.Now()
	sent := 0
	err := genx.StreamDataset(spec, func(step, file int, blocks []*genx.BlockData) error {
		path := genx.SnapshotFile("", step, file)
		fp := &remote.FilePayload{
			Time:   blocks[0].Time,
			StepID: blocks[0].StepID,
			Blocks: blocks,
		}
		if err := cli.Ingest(path, fp); err != nil {
			return err
		}
		sent++
		if file == spec.FilesPerSnapshot-1 {
			fmt.Printf("pushed step %d (%s): %d files\n", step, blocks[0].StepID, spec.FilesPerSnapshot)
		}
		if interval > 0 {
			time.Sleep(interval)
		}
		return nil
	})
	if err != nil {
		return err
	}
	st := cli.Stats()
	fmt.Printf("streamed %d files to %s in %v (%d RPCs, %d retries)\n",
		sent, addr, time.Since(start).Round(time.Millisecond), st.RPCs, st.Retries)
	return nil
}
