// Command godiva-bench regenerates the paper's evaluation (§4.2) on the
// simulated Engle and Turing platforms: Figure 3(a), Figure 3(b), the
// I/O-volume reductions, and the parallel Voyager experiment. Results are
// printed as tables with means and 95% confidence intervals, next to the
// paper's numbers.
//
// Usage:
//
//	godiva-bench [-fig 3a|3b|par|ablate|workers|remote|lock|zerocopy|push|batch|all] [-reps 5] [-snapshots 32]
//	             [-data DIR] [-timescale 0.05] [-quick] [-json BENCH_remote.json]
//	             [-lockjson BENCH_lock.json] [-zerojson BENCH_zerocopy.json]
//	             [-pushjson BENCH_push.json] [-batchjson BENCH_batch.json]
//	             [-mutexprofile mutex.pprof] [-blockprofile block.pprof]
//
// -quick shrinks the run (1 rep, 6 snapshots, faster clock) for a smoke
// pass; the defaults reproduce the full experiment in a few minutes.
// -mutexprofile and -blockprofile enable Go's contention profilers for the
// whole run and write pprof files on successful exit, for inspecting where
// the database lock is held and where goroutines block.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"godiva/internal/experiments"
	"godiva/internal/genx"
	"godiva/internal/rocketeer"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "experiment: 3a, 3b, par, ablate, workers, remote, lock, zerocopy, push, batch or all")
		reps      = flag.Int("reps", 0, "repetitions per configuration (0 = default)")
		snapshots = flag.Int("snapshots", 0, "snapshots per run (0 = all 32)")
		data      = flag.String("data", "godiva-bench-data", "dataset directory (generated on demand)")
		timescale = flag.Float64("timescale", 0, "wall seconds per virtual second (0 = default)")
		quick     = flag.Bool("quick", false, "fast smoke configuration")
		procs     = flag.Int("procs", 4, "process count for the parallel experiment")
		jsonOut   = flag.String("json", "BENCH_remote.json", "remote-sweep JSON artifact path (empty = no file)")
		lockOut   = flag.String("lockjson", "BENCH_lock.json", "lock-sweep JSON artifact path (empty = no file)")
		zeroOut   = flag.String("zerojson", "BENCH_zerocopy.json", "zero-copy-sweep JSON artifact path (empty = no file)")
		pushOut   = flag.String("pushjson", "BENCH_push.json", "push-sweep JSON artifact path (empty = no file)")
		batchOut  = flag.String("batchjson", "BENCH_batch.json", "batch-sweep JSON artifact path (empty = no file)")
		mutexProf = flag.String("mutexprofile", "", "write a mutex contention profile to this file")
		blockProf = flag.String("blockprofile", "", "write a blocking profile to this file")
	)
	flag.Parse()

	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(5)
		defer writeProfile("mutex", *mutexProf)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(10_000) // sample blocking events >= 10µs
		defer writeProfile("block", *blockProf)
	}

	s := experiments.DefaultSetup(*data)
	if *quick {
		s = experiments.QuickSetup(*data)
	}
	if *reps > 0 {
		s.Reps = *reps
	}
	if *snapshots > 0 {
		s.Snapshots = *snapshots
	}
	if *timescale > 0 {
		s.Scale = *timescale
	}
	s.Log = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }

	run3a := *fig == "3a" || *fig == "all"
	run3b := *fig == "3b" || *fig == "all"
	runPar := *fig == "par" || *fig == "all"
	runAbl := *fig == "ablate" || *fig == "all"
	runWrk := *fig == "workers" || *fig == "all"
	runRem := *fig == "remote" || *fig == "all"
	runLck := *fig == "lock" || *fig == "all"
	runZC := *fig == "zerocopy" || *fig == "all"
	runPsh := *fig == "push" || *fig == "all"
	runBat := *fig == "batch" || *fig == "all"
	if !run3a && !run3b && !runPar && !runAbl && !runWrk && !runRem && !runLck && !runZC && !runPsh && !runBat {
		fmt.Fprintf(os.Stderr, "godiva-bench: unknown -fig %q (want 3a, 3b, par, ablate, workers, remote, lock, zerocopy, push, batch or all)\n", *fig)
		os.Exit(2)
	}

	if run3a {
		fmt.Println("== Figure 3(a): Voyager running time on the Engle workstation ==")
		ms, err := experiments.Figure3a(s)
		if err != nil {
			fail(err)
		}
		experiments.PrintMeasurements(os.Stdout, "\nFigure 3(a) — Engle (1 CPU)", ms)
		experiments.PrintSummary(os.Stdout, ms)
		fmt.Println()
	}
	if run3b {
		fmt.Println("== Figure 3(b): Voyager running time on a Turing cluster node ==")
		ms, err := experiments.Figure3b(s)
		if err != nil {
			fail(err)
		}
		experiments.PrintMeasurements(os.Stdout, "\nFigure 3(b) — Turing (2 CPUs)", ms)
		experiments.PrintSummary(os.Stdout, ms)
		fmt.Println()
	}
	if runPar {
		fmt.Printf("== Parallel Voyager: %d processes on Turing nodes ==\n", *procs)
		for _, vt := range rocketeer.Tests() {
			res, err := experiments.RunParallel(s, vt, *procs)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-8s O %8.1fs  TG %8.1fs  total-time reduction %.1f%% (paper: similar to sequential mode)\n",
				res.Test, res.TotalO.Seconds(), res.TotalTG.Seconds(), 100*res.Reduction)
		}
		fmt.Println()
	}
	if runAbl {
		fmt.Println("== Ablations: unit granularity and database memory cap ==")
		test, _ := rocketeer.TestByName("medium")
		gr, err := experiments.RunGranularity(s, test)
		if err != nil {
			fail(err)
		}
		experiments.PrintGranularity(os.Stdout, gr)
		mem, err := experiments.RunMemorySweep(s, test, experiments.DefaultMemoryMultiples())
		if err != nil {
			fail(err)
		}
		experiments.PrintMemorySweep(os.Stdout, mem)
		formats, err := experiments.RunFormatComparison(s)
		if err != nil {
			fail(err)
		}
		experiments.PrintFormatComparison(os.Stdout, formats)
		fmt.Println()
	}
	if runWrk {
		fmt.Println("== Worker-pool sweep: background I/O scaling beyond the paper's single thread ==")
		cells, err := experiments.RunWorkerSweep(experiments.WorkerSweepConfig{})
		if err != nil {
			fail(err)
		}
		experiments.PrintWorkerSweep(os.Stdout, cells)
		fmt.Println()
	}
	if runRem {
		fmt.Println("== Remote unit service: local vs remote read functions (godivad on loopback) ==")
		rcfg := experiments.RemoteSweepConfig{Dir: *data + "-remote", Log: s.Log}
		if *quick {
			rcfg.Spec = genx.Scaled(32)
			rcfg.Workers = []int{1, 4}
		}
		cells, err := experiments.RunRemoteSweep(rcfg)
		if err != nil {
			fail(err)
		}
		experiments.PrintRemoteSweep(os.Stdout, cells)
		if *jsonOut != "" {
			if err := experiments.WriteRemoteJSON(*jsonOut, cells); err != nil {
				fail(err)
			}
			fmt.Printf("\nwrote %s\n", *jsonOut)
		}
		fmt.Println()
	}
	if runLck {
		fmt.Println("== Lock sweep: query throughput under unit churn (decomposed DB lock) ==")
		// The full sweep runs every cell at GOMAXPROCS 1, 2, 4 and 8 so the
		// committed BENCH_lock.json shows how the decomposed lock behaves
		// with real (or oversubscribed — see EXPERIMENTS.md) parallelism,
		// not just the serialized procs=1 schedule.
		lcfg := experiments.LockSweepConfig{
			Dir:    *data + "-remote",
			Remote: true,
			Procs:  []int{1, 2, 4, 8},
			Log:    s.Log,
		}
		if *quick {
			lcfg.Spec = genx.Scaled(8)
			lcfg.Readers = []int{1, 4}
			lcfg.Workers = []int{1}
			lcfg.Procs = []int{1, 2}
			lcfg.Duration = 100 * time.Millisecond
		}
		cells, err := experiments.RunLockSweep(lcfg)
		if err != nil {
			fail(err)
		}
		experiments.PrintLockSweep(os.Stdout, cells)
		if *lockOut != "" {
			if err := experiments.WriteLockJSON(*lockOut, cells); err != nil {
				fail(err)
			}
			fmt.Printf("\nwrote %s\n", *lockOut)
		}
		fmt.Println()
	}
	if runZC {
		fmt.Println("== Zero-copy sweep: bytes copied per unit by read path (copy vs mmap vs remote) ==")
		zcfg := experiments.ZeroCopySweepConfig{Dir: *data + "-zerocopy", Log: s.Log}
		if *quick {
			zcfg.Spec = genx.Scaled(32)
			zcfg.Workers = []int{1}
			zcfg.Duration = 100 * time.Millisecond
		}
		cells, err := experiments.RunZeroCopySweep(zcfg)
		if err != nil {
			fail(err)
		}
		experiments.PrintZeroCopySweep(os.Stdout, cells)
		if *zeroOut != "" {
			if err := experiments.WriteZeroCopyJSON(*zeroOut, cells); err != nil {
				fail(err)
			}
			fmt.Printf("\nwrote %s\n", *zeroOut)
		}
		fmt.Println()
	}
	if runPsh {
		fmt.Println("== Push sweep: live ingest fan-out under a stalled subscriber ==")
		pcfg := experiments.PushSweepConfig{Log: s.Log}
		if *quick {
			pcfg.Spec = genx.Scaled(32)
			pcfg.Spec.Snapshots = 6
			pcfg.Spec.FilesPerSnapshot = 2
			pcfg.Producers = []int{1}
			pcfg.Subscribers = []int{2}
		}
		cells, err := experiments.RunPushSweep(pcfg)
		if err != nil {
			fail(err)
		}
		experiments.PrintPushSweep(os.Stdout, cells)
		if *pushOut != "" {
			if err := experiments.WritePushJSON(*pushOut, cells); err != nil {
				fail(err)
			}
			fmt.Printf("\nwrote %s\n", *pushOut)
		}
		fmt.Println()
	}
	if runBat {
		fmt.Println("== Batch sweep: OpFetchBatch framing and the pinned payload cache ==")
		bcfg := experiments.BatchSweepConfig{Dir: *data + "-batch", Log: s.Log}
		if *quick {
			bcfg.Spec = genx.Scaled(32)
			bcfg.Spec.FilesPerSnapshot = 8
			bcfg.Spec.Snapshots = 2
			bcfg.Batches = []int{1, 8}
			bcfg.Reps = 2
			bcfg.Clients = 4
			bcfg.Rounds = 2
		}
		bcells, hcells, err := experiments.RunBatchSweep(bcfg)
		if err != nil {
			fail(err)
		}
		experiments.PrintBatchSweep(os.Stdout, bcells, hcells)
		if *batchOut != "" {
			if err := experiments.WriteBatchJSON(*batchOut, bcells, hcells); err != nil {
				fail(err)
			}
			fmt.Printf("\nwrote %s\n", *batchOut)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "godiva-bench:", err)
	os.Exit(1)
}

// writeProfile dumps a named runtime profile ("mutex", "block") collected
// over the whole run to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "godiva-bench:", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "godiva-bench:", err)
		return
	}
	fmt.Printf("wrote %s profile to %s\n", name, path)
}
