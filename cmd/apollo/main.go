// Command apollo is the interactive-mode counterpart of voyager, named for
// the paper's Apollo/Houston interactive tool, driven by a session script
// instead of a GUI so sessions are reproducible. Each script line is a
// command; the tool issues explicit blocking ReadUnit calls (interactive
// tools cannot predict the user), marks viewed snapshots "finished" so
// GODIVA's cache serves revisits, and renders the requested view.
//
// Script commands (one per line, '#' comments):
//
//	view <step> <surface|iso|slice|cut> <variable> [param]
//	mem <MB>          adjust the database memory cap (SetMemSpace)
//	drop <step>       explicitly delete a snapshot's unit
//	stats             print database statistics
//
// Usage:
//
//	apollo -data genx-data -script session.txt -out images
//
// Without -script, a built-in demo session runs: the back-and-forth
// browsing pattern the paper describes for interactive users.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"godiva/internal/genx"
	"godiva/internal/remote"
	"godiva/internal/rocketeer"
)

const demoScript = `
# Compare two time steps back and forth (cache hits after the first views),
# then scan forward, then come back.
view 1 surface velocity
view 2 surface velocity
view 1 surface velocity
view 2 surface velocity
view 0 iso stress_avg 0.5
view 3 slice temperature 0.4
view 1 surface velocity
stats
`

func main() {
	var (
		data   = flag.String("data", "genx-data", "dataset directory (see genxgen)")
		script = flag.String("script", "", "session script (empty = built-in demo)")
		out    = flag.String("out", "apollo-images", "image output directory")
		mem    = flag.Int("mem", 384, "initial GODIVA memory limit in MB")
		width  = flag.Int("width", 640, "image width")
		height = flag.Int("height", 480, "image height")
		raddr  = flag.String("remote", "", "godivad server address; fetch units remotely instead of from -data")
	)
	flag.Parse()

	var (
		spec   genx.Spec
		client *remote.Client
		err    error
	)
	if *raddr != "" {
		client = remote.NewClient(remote.ClientOptions{Addr: *raddr})
		if spec, err = client.Spec(); err != nil {
			fail(err)
		}
		defer client.Close()
	} else if spec, err = genx.Discover(*data); err != nil {
		fail(err)
	}
	lines := strings.Split(demoScript, "\n")
	demo := true
	if *script != "" {
		demo = false
		f, err := os.Open(*script)
		if err != nil {
			fail(err)
		}
		lines = nil
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		f.Close()
		if err := sc.Err(); err != nil {
			fail(err)
		}
	}

	session, err := rocketeer.NewSession(rocketeer.SessionConfig{
		Spec:        spec,
		Dir:         *data,
		MemoryLimit: int64(*mem) << 20,
		ImageDir:    *out,
		Width:       *width,
		Height:      *height,
		Remote:      client,
	})
	if err != nil {
		fail(err)
	}
	defer session.Close()

	for ln, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := run(session, line, demo, spec.Snapshots); err != nil {
			fail(fmt.Errorf("line %d (%q): %w", ln+1, line, err))
		}
	}
}

func run(s *rocketeer.Session, line string, demo bool, snapshots int) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "view":
		if len(fields) < 4 {
			return fmt.Errorf("view needs: step feature variable [param]")
		}
		step, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if demo {
			step %= snapshots // the built-in demo adapts to small datasets
		}
		param := 0.5
		if len(fields) > 4 {
			if param, err = strconv.ParseFloat(fields[4], 64); err != nil {
				return err
			}
		}
		view, err := s.View(step, fields[2], fields[3], param)
		if err != nil {
			return err
		}
		how := "disk"
		if view.CacheHit {
			how = "cache"
		}
		fmt.Printf("view step %d %s %s: %s (%v), wrote %s\n",
			step, fields[2], fields[3], how, view.Elapsed.Round(1e6), view.Image)
		return nil
	case "mem":
		if len(fields) != 2 {
			return fmt.Errorf("mem needs a size in MB")
		}
		mb, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		s.SetMemSpace(int64(mb) << 20)
		fmt.Printf("memory cap set to %d MB\n", mb)
		return nil
	case "drop":
		if len(fields) != 2 {
			return fmt.Errorf("drop needs a step")
		}
		step, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		return s.Drop(step)
	case "stats":
		st := s.Stats()
		fmt.Printf("stats: %d units read, %d cache hits, %d evicted, peak %.1f MB, visible wait %v\n",
			st.UnitsRead, st.CacheHits, st.UnitsEvicted, float64(st.PeakBytes)/1e6,
			st.VisibleWait.Round(1e6))
		if rs, ok := s.ExternalStats()["remote"].(remote.RemoteStats); ok {
			fmt.Printf("remote: %d fetches (%d coalesced), %d RPCs, %d retries, %d errors, %.1f MB in\n",
				rs.Fetches, rs.Coalesced, rs.RPCs, rs.Retries, rs.Errors, float64(rs.BytesIn)/1e6)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "apollo:", err)
	os.Exit(1)
}
