// Command voyager is the reproduction's batch-mode visualization tool: it
// grinds through a series of GENx snapshot files and renders one PNG per
// visualization pass per snapshot, like the paper's Rocketeer Voyager.
//
// Three builds are selectable, matching the evaluation's comparison:
//
//	-version O    original: reading coupled with processing (redundant reads)
//	-version G    single-thread GODIVA library (blocking unit reads)
//	-version TG   multi-thread GODIVA library (background prefetching)
//
// Usage:
//
//	voyager -data genx-data -out images [-test complex] [-version TG] [-mem 384]
//
// The run executes at native speed (no platform simulation) and prints the
// paper's metrics — total, visible I/O and computation time — at the end.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"godiva/internal/genx"
	"godiva/internal/push"
	"godiva/internal/remote"
	"godiva/internal/rocketeer"
)

func main() {
	var (
		data    = flag.String("data", "genx-data", "dataset directory (see genxgen)")
		out     = flag.String("out", "images", "image output directory (empty = no images)")
		test    = flag.String("test", "simple", "visualization test: simple, medium or complex")
		version = flag.String("version", "TG", "build: O, G or TG")
		mem     = flag.Int("mem", 384, "GODIVA database memory limit in MB")
		snaps   = flag.Int("snapshots", 0, "snapshots to process (0 = all)")
		width   = flag.Int("width", 640, "image width")
		height  = flag.Int("height", 480, "image height")
		trace   = flag.Bool("trace", false, "print the unit prefetch timeline (G/TG builds)")
		raddr   = flag.String("remote", "", "godivad server address; fetch units remotely instead of from -data")
		batch   = flag.Int("batch", 0, "files per remote fetch RPC (0 = default 8, 1 = per-file OpFetch)")
		workers = flag.Int("io-workers", 0, "background I/O workers (0 = the paper's single thread; TG build)")
		follow  = flag.Bool("follow", false, "subscribe to a push-enabled server (-remote) and render steps as they are ingested")
		policy  = flag.String("policy", "drop", "follow delivery policy: drop (skip stale steps) or block (lossless)")
		queue   = flag.Int("queue", 0, "follow delivery queue depth (0 = default)")
		maxStep = flag.Int("max-steps", 0, "stop following after this many rendered steps (0 = until the stream ends)")
	)
	flag.Parse()

	vt, ok := rocketeer.TestByName(*test)
	if !ok {
		fmt.Fprintf(os.Stderr, "voyager: unknown test %q (want simple, medium or complex)\n", *test)
		os.Exit(2)
	}
	if *follow {
		if *raddr == "" {
			fmt.Fprintln(os.Stderr, "voyager: -follow needs -remote (a push-enabled godivad)")
			os.Exit(2)
		}
		if err := runFollow(*raddr, vt, *policy, *queue, *maxStep, *out, *width, *height, int64(*mem)<<20); err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		return
	}
	var (
		spec   genx.Spec
		client *remote.Client
		err    error
	)
	if *raddr != "" {
		client = remote.NewClient(remote.ClientOptions{Addr: *raddr, MaxBatch: *batch})
		if spec, err = client.Spec(); err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		defer client.Close()
		fmt.Printf("remote dataset at %s: ", *raddr)
	} else {
		spec, err = genx.Discover(*data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		fmt.Print("dataset: ")
	}
	fmt.Printf("%d snapshots x %d files, %d blocks\n",
		spec.Snapshots, spec.FilesPerSnapshot, spec.Blocks)

	res, err := rocketeer.Run(rocketeer.Version(*version), rocketeer.Config{
		Test:        vt,
		Spec:        spec,
		Dir:         *data,
		MemoryLimit: int64(*mem) << 20,
		Snapshots:   *snaps,
		ImageDir:    *out,
		Width:       *width,
		Height:      *height,
		TraceUnits:  *trace,
		IOWorkers:   *workers,
		Remote:      client,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager:", err)
		os.Exit(1)
	}
	fmt.Printf("%s/%s: %d images\n", res.Test, res.Version, res.Images)
	fmt.Printf("  total time:       %v\n", res.Total.Round(1e6))
	fmt.Printf("  visible I/O time: %v\n", res.VisibleIO.Round(1e6))
	fmt.Printf("  computation time: %v\n", res.Compute.Round(1e6))
	if res.Version != rocketeer.VersionO {
		fmt.Printf("  GODIVA: %d units read (%d prefetched), %d cache hits, peak %0.1f MB\n",
			res.DB.UnitsRead, res.DB.UnitsPrefetched, res.DB.CacheHits,
			float64(res.DB.PeakBytes)/1e6)
	}
	if client != nil {
		rs := client.Stats()
		fmt.Printf("  remote: %d fetches (%d coalesced), %d RPCs, %d retries, %d errors, %.1f MB in\n",
			rs.Fetches, rs.Coalesced, rs.RPCs, rs.Retries, rs.Errors, float64(rs.BytesIn)/1e6)
	}
	if *trace && len(res.Events) > 0 {
		fmt.Println("  unit timeline (ms from first event):")
		t0 := res.Events[0].When
		for _, e := range res.Events {
			fmt.Printf("   %8.1f  %-12s %s -> %s\n",
				float64(e.When.Sub(t0).Microseconds())/1000, e.Unit, e.From, e.To)
		}
	}
}

// runFollow is the live mode: subscribe to a push-enabled godivad and
// render each time step as its files are ingested, until the stream ends,
// -max-steps is reached, or SIGINT.
func runFollow(addr string, vt rocketeer.VisTest, policy string, queue, maxSteps int, out string, width, height int, mem int64) error {
	var pol push.Policy
	switch policy {
	case "drop":
		pol = push.DropOldest
	case "block":
		pol = push.Block
	default:
		return fmt.Errorf("unknown -policy %q (want drop or block)", policy)
	}
	client := remote.NewClient(remote.ClientOptions{Addr: addr})
	defer client.Close()
	if err := client.Ping(); err != nil {
		return err
	}
	fmt.Printf("following %s (%s test, %s policy)\n", addr, vt.Name, pol)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("voyager: interrupted, closing the stream")
		if err := client.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
		}
	}()

	res, err := rocketeer.Follow(rocketeer.FollowConfig{
		Test:        vt,
		Client:      client,
		Policy:      pol,
		Queue:       queue,
		MaxSteps:    maxSteps,
		MemoryLimit: mem,
		ImageDir:    out,
		Width:       width,
		Height:      height,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("followed %d steps (%d skipped, %d events): %d images\n",
		res.Steps, res.Skipped, res.Events, res.Images)
	fmt.Printf("  GODIVA: %d units read (%d prefetched), %d cache hits, peak %0.1f MB\n",
		res.DB.UnitsRead, res.DB.UnitsPrefetched, res.DB.CacheHits,
		float64(res.DB.PeakBytes)/1e6)
	return nil
}
