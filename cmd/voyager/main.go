// Command voyager is the reproduction's batch-mode visualization tool: it
// grinds through a series of GENx snapshot files and renders one PNG per
// visualization pass per snapshot, like the paper's Rocketeer Voyager.
//
// Three builds are selectable, matching the evaluation's comparison:
//
//	-version O    original: reading coupled with processing (redundant reads)
//	-version G    single-thread GODIVA library (blocking unit reads)
//	-version TG   multi-thread GODIVA library (background prefetching)
//
// Usage:
//
//	voyager -data genx-data -out images [-test complex] [-version TG] [-mem 384]
//
// The run executes at native speed (no platform simulation) and prints the
// paper's metrics — total, visible I/O and computation time — at the end.
package main

import (
	"flag"
	"fmt"
	"os"

	"godiva/internal/genx"
	"godiva/internal/remote"
	"godiva/internal/rocketeer"
)

func main() {
	var (
		data    = flag.String("data", "genx-data", "dataset directory (see genxgen)")
		out     = flag.String("out", "images", "image output directory (empty = no images)")
		test    = flag.String("test", "simple", "visualization test: simple, medium or complex")
		version = flag.String("version", "TG", "build: O, G or TG")
		mem     = flag.Int("mem", 384, "GODIVA database memory limit in MB")
		snaps   = flag.Int("snapshots", 0, "snapshots to process (0 = all)")
		width   = flag.Int("width", 640, "image width")
		height  = flag.Int("height", 480, "image height")
		trace   = flag.Bool("trace", false, "print the unit prefetch timeline (G/TG builds)")
		raddr   = flag.String("remote", "", "godivad server address; fetch units remotely instead of from -data")
		workers = flag.Int("io-workers", 0, "background I/O workers (0 = the paper's single thread; TG build)")
	)
	flag.Parse()

	vt, ok := rocketeer.TestByName(*test)
	if !ok {
		fmt.Fprintf(os.Stderr, "voyager: unknown test %q (want simple, medium or complex)\n", *test)
		os.Exit(2)
	}
	var (
		spec   genx.Spec
		client *remote.Client
		err    error
	)
	if *raddr != "" {
		client = remote.NewClient(remote.ClientOptions{Addr: *raddr})
		if spec, err = client.Spec(); err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		defer client.Close()
		fmt.Printf("remote dataset at %s: ", *raddr)
	} else {
		spec, err = genx.Discover(*data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voyager:", err)
			os.Exit(1)
		}
		fmt.Print("dataset: ")
	}
	fmt.Printf("%d snapshots x %d files, %d blocks\n",
		spec.Snapshots, spec.FilesPerSnapshot, spec.Blocks)

	res, err := rocketeer.Run(rocketeer.Version(*version), rocketeer.Config{
		Test:        vt,
		Spec:        spec,
		Dir:         *data,
		MemoryLimit: int64(*mem) << 20,
		Snapshots:   *snaps,
		ImageDir:    *out,
		Width:       *width,
		Height:      *height,
		TraceUnits:  *trace,
		IOWorkers:   *workers,
		Remote:      client,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "voyager:", err)
		os.Exit(1)
	}
	fmt.Printf("%s/%s: %d images\n", res.Test, res.Version, res.Images)
	fmt.Printf("  total time:       %v\n", res.Total.Round(1e6))
	fmt.Printf("  visible I/O time: %v\n", res.VisibleIO.Round(1e6))
	fmt.Printf("  computation time: %v\n", res.Compute.Round(1e6))
	if res.Version != rocketeer.VersionO {
		fmt.Printf("  GODIVA: %d units read (%d prefetched), %d cache hits, peak %0.1f MB\n",
			res.DB.UnitsRead, res.DB.UnitsPrefetched, res.DB.CacheHits,
			float64(res.DB.PeakBytes)/1e6)
	}
	if client != nil {
		rs := client.Stats()
		fmt.Printf("  remote: %d fetches (%d coalesced), %d RPCs, %d retries, %d errors, %.1f MB in\n",
			rs.Fetches, rs.Coalesced, rs.RPCs, rs.Retries, rs.Errors, float64(rs.BytesIn)/1e6)
	}
	if *trace && len(res.Events) > 0 {
		fmt.Println("  unit timeline (ms from first event):")
		t0 := res.Events[0].When
		for _, e := range res.Events {
			fmt.Printf("   %8.1f  %-12s %s -> %s\n",
				float64(e.When.Sub(t0).Microseconds())/1000, e.Unit, e.From, e.To)
		}
	}
}
