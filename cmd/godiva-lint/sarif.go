package main

// sarif.go renders findings as a SARIF 2.1.0 log (-sarif), the static
// analysis interchange format code-scanning services ingest. One run, one
// driver; each analyzer that produced a finding becomes a rule, suppressed
// findings carry an inSource suppression object so they upload without
// counting against the scan.

import (
	"encoding/json"
	"io"
	"sort"

	"godiva/internal/lint"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

// writeSARIF renders the findings (suppressed included, marked) as one
// SARIF log on w. Paths are module-relative.
func writeSARIF(w io.Writer, root string, findings []lint.Finding) error {
	docs := lint.AnalyzerDescriptions()
	used := make(map[string]bool)
	var results []sarifResult
	for _, f := range findings {
		used[f.Analyzer] = true
		res := sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relpath(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		}
		if f.Suppressed {
			res.Suppressions = []sarifSuppression{{Kind: "inSource"}}
		}
		results = append(results, res)
	}
	names := make([]string, 0, len(used))
	for name := range used {
		names = append(names, name)
	}
	sort.Strings(names)
	rules := make([]sarifRule, 0, len(names))
	for _, name := range names {
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: docs[name]}})
	}
	if results == nil {
		results = []sarifResult{}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "godiva-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
