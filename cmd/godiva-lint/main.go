// Command godiva-lint runs the repository's purpose-built static analyzers
// (internal/lint) over godiva packages:
//
//	go run ./cmd/godiva-lint ./...
//	go run ./cmd/godiva-lint -tags godivainvariants ./internal/core
//	go run ./cmd/godiva-lint -only releasecheck,borrowcheck,wirecheck ./...
//
// -only restricts a run to the named analyzers (the dataflow stage of
// verify.sh uses it to gate on the flow-sensitive suite alone); -help
// lists every selectable name.
//
// It prints findings as file:line:col: [analyzer] message and exits with
// status 1 when there are findings, 2 on usage or load errors. With -json,
// each finding is emitted as one JSON object per line (analyzer, file,
// line, col, message, suppressed) for CI and editor consumption —
// suppressed findings are included there, marked, and do not affect the
// exit code. With -sarif, the findings are rendered as one SARIF 2.1.0 log
// for code-scanning upload (suppressed findings carry an inSource
// suppression). Findings can be suppressed with a //lint:ignore <analyzer>
// <reason> directive on or directly above the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"godiva/internal/lint"
)

// jsonFinding is the -json wire form of one finding, one object per line.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	tags := flag.String("tags", "", "comma-separated build tags to enable (as in go build -tags)")
	jsonOut := flag.Bool("json", false, "emit one JSON finding per line (including suppressed findings, marked)")
	sarifOut := flag.Bool("sarif", false, "emit a SARIF 2.1.0 log (including suppressed findings, marked with an inSource suppression)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: the full suite)")
	verbose := flag.Bool("v", false, "also print type-check diagnostics the analyzers tolerated")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: godiva-lint [-tags taglist] [-only analyzer,...] [packages]\n\nanalyzers (each selectable with -only):\n")
		for _, d := range lint.AnalyzerDocs() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %s\n", d)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "godiva-lint: %v\n", err)
		os.Exit(2)
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	m, err := lint.LoadModule(root, tagList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "godiva-lint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var onlyList []string
	if *only != "" {
		onlyList = strings.Split(*only, ",")
	}
	run := lint.RunOnly
	if *jsonOut || *sarifOut {
		run = lint.RunAllOnly
	}
	findings, err := run(m, patterns, onlyList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "godiva-lint: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		// Reload package-by-package to surface tolerated type errors.
		dirs, _ := m.ExpandPatterns(patterns)
		for _, dir := range dirs {
			if pkg, err := m.LintPackage(dir); err == nil {
				for _, terr := range pkg.TypeErrors {
					fmt.Fprintf(os.Stderr, "godiva-lint: note: %v\n", terr)
				}
			}
		}
	}
	live := 0
	for _, f := range findings {
		if !f.Suppressed {
			live++
		}
	}
	if *sarifOut {
		if err := writeSARIF(os.Stdout, root, findings); err != nil {
			fmt.Fprintf(os.Stderr, "godiva-lint: %v\n", err)
			os.Exit(2)
		}
		if live > 0 {
			fmt.Fprintf(os.Stderr, "godiva-lint: %d finding(s)\n", live)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *jsonOut {
			rel := relpath(root, f.Pos.Filename)
			enc.Encode(jsonFinding{
				Analyzer:   f.Analyzer,
				File:       rel,
				Line:       f.Pos.Line,
				Col:        f.Pos.Column,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
			continue
		}
		fmt.Println(relativize(root, f))
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "godiva-lint: %d finding(s)\n", live)
		os.Exit(1)
	}
}

// relpath maps an absolute file path to its module-relative form when
// possible.
func relpath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relativize prints a finding with the module-relative path when possible.
func relativize(root string, f lint.Finding) string {
	f.Pos.Filename = relpath(root, f.Pos.Filename)
	return f.String()
}
