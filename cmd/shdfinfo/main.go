// Command shdfinfo inspects SHDF files (the repository's HDF4-like
// scientific format): it lists objects with their tags, refs, shapes and
// sizes, resolves vgroup memberships, verifies checksums, and optionally
// dumps dataset statistics — the counterpart of HDF's hdp/h4dump utilities
// that scientists use to check what a simulation wrote.
//
// Usage:
//
//	shdfinfo [-stats] [-verify] file.shdf...
package main

import (
	"flag"
	"fmt"
	"os"

	"godiva/internal/shdf"
)

func main() {
	var (
		stats  = flag.Bool("stats", false, "print min/max/mean for numeric datasets")
		verify = flag.Bool("verify", false, "read every object and verify its checksum")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: shdfinfo [-stats] [-verify] file.shdf...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := dump(path, *stats, *verify); err != nil {
			fmt.Fprintf(os.Stderr, "shdfinfo: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func dump(path string, stats, verify bool) error {
	f, err := shdf.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	objs := f.Objects()
	fmt.Printf("%s: %d objects\n", path, len(objs))

	// Map refs to the vgroups containing them.
	memberOf := map[shdf.Ref]string{}
	groups, err := f.VGroups()
	if err != nil {
		return err
	}
	for _, g := range groups {
		for _, m := range g.Members {
			memberOf[m] = g.Name
		}
	}

	for _, o := range objs {
		switch o.Tag {
		case shdf.TagSDS:
			line := fmt.Sprintf("  SDS    ref %4d  %-28s %8d bytes", o.Ref, o.Name, o.ByteLen)
			if g, ok := memberOf[o.Ref]; ok {
				line += "  [" + g + "]"
			}
			fmt.Println(line)
			if stats || verify {
				ds, err := f.ReadSDS(o.Ref)
				if err != nil {
					return err
				}
				if stats {
					fmt.Printf("         %v dims %v  %s\n", ds.Type, ds.Dims, summarize(ds))
				}
			}
		case shdf.TagAttr:
			fmt.Printf("  Attr   ref %4d  %-28s %8d bytes", o.Ref, o.Name, o.ByteLen)
			a, err := f.ReadAttr(o.Ref)
			if err != nil {
				return err
			}
			switch {
			case a.IsStr:
				fmt.Printf("  = %q\n", a.Str)
			case a.IsInt:
				fmt.Printf("  = %d\n", a.Int)
			case a.IsFlt:
				fmt.Printf("  = %g\n", a.Float)
			default:
				fmt.Println()
			}
		case shdf.TagVGroup:
			g, err := f.ReadVGroup(o.Ref)
			if err != nil {
				return err
			}
			fmt.Printf("  VGroup ref %4d  %-28s %d members\n", o.Ref, o.Name, len(g.Members))
		}
	}
	if verify {
		fmt.Printf("  all %d objects verified OK\n", len(objs))
	}
	return nil
}

// summarize prints a numeric dataset's range and mean.
func summarize(ds *shdf.Dataset) string {
	var lo, hi, sum float64
	n := 0
	visit := func(v float64) {
		if n == 0 {
			lo, hi = v, v
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += v
		n++
	}
	switch {
	case ds.Float64s != nil:
		for _, v := range ds.Float64s {
			visit(v)
		}
	case ds.Float32s != nil:
		for _, v := range ds.Float32s {
			visit(float64(v))
		}
	case ds.Int32s != nil:
		for _, v := range ds.Int32s {
			visit(float64(v))
		}
	case ds.Int64s != nil:
		for _, v := range ds.Int64s {
			visit(float64(v))
		}
	case ds.Uint8s != nil:
		for _, v := range ds.Uint8s {
			visit(float64(v))
		}
	}
	if n == 0 {
		return "empty"
	}
	return fmt.Sprintf("min %.6g  max %.6g  mean %.6g", lo, hi, sum/float64(n))
}
