// Command godivad is the GODIVA remote unit server: it serves unit payloads
// out of a directory of GENx/SHDF snapshot files over the wire protocol in
// internal/remote, so voyager and apollo (run with -remote) can process data
// that lives on another machine without changing their GODIVA usage at all.
//
// Usage:
//
//	godivad -data genx-data [-addr 127.0.0.1:7144] [-readers 8]
//
// Fault-injection flags make a configurable fraction of fetch responses
// fail — dropped mid-payload, rejected with a retryable error, or delayed —
// to exercise client retry behavior:
//
//	godivad -data genx-data -fault-err 0.05 -fault-drop 0.05 -fault-seed 1
//
// With -ingest the server also accepts pushed snapshots (genxgen -stream)
// and serves reactive subscriptions (voyager -follow); it then starts even
// on an empty or missing -data directory and fills it as producers push.
//
// On SIGINT/SIGTERM the server drains and prints its operation counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"godiva/internal/remote"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7144", "listen address")
		data      = flag.String("data", "genx-data", "snapshot directory to serve (see genxgen)")
		readers   = flag.Int("readers", 8, "open snapshot readers to cache")
		payloadMB = flag.Int64("payload-cache", 64, "pinned payload cache budget in MiB (0 disables)")
		idle      = flag.Duration("idle", 5*time.Minute, "drop connections idle this long")
		quiet     = flag.Bool("quiet", false, "suppress per-connection logging")
		ingest    = flag.Bool("ingest", false, "accept pushed snapshots and subscriptions")
		heartbeat = flag.Duration("heartbeat", 0, "keep-alive interval on idle subscription streams (0 = auto)")
		faultDrop = flag.Float64("fault-drop", 0, "fraction of fetches dropped mid-payload")
		faultErr  = flag.Float64("fault-err", 0, "fraction of fetches answered with a retryable error")
		faultSlow = flag.Float64("fault-delay-frac", 0, "fraction of fetches delayed by -fault-delay")
		faultWait = flag.Duration("fault-delay", 100*time.Millisecond, "delay applied to slowed fetches")
		faultStal = flag.Float64("fault-stall-frac", 0, "fraction of event deliveries stalled by -fault-delay")
		faultSeed = flag.Int64("fault-seed", 1, "fault-injection random seed")
	)
	flag.Parse()

	cacheBudget := *payloadMB << 20
	if cacheBudget <= 0 {
		cacheBudget = -1 // ServerOptions: negative disables, zero means default
	}
	opts := remote.ServerOptions{
		Addr:         *addr,
		Dir:          *data,
		ReaderCache:  *readers,
		PayloadCache: cacheBudget,
		IdleTimeout:  *idle,
		Ingest:       *ingest,
		Heartbeat:    *heartbeat,
		Faults: remote.Faults{
			Seed:      *faultSeed,
			DropFrac:  *faultDrop,
			ErrFrac:   *faultErr,
			DelayFrac: *faultSlow,
			StallFrac: *faultStal,
			Delay:     *faultWait,
		},
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "godivad: "+format+"\n", args...)
		}
	}
	srv, err := remote.Serve(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "godivad:", err)
		os.Exit(1)
	}
	spec := srv.Spec()
	fmt.Printf("godivad: serving %s on %s (%d snapshots x %d files, %d blocks)\n",
		*data, srv.Addr(), spec.Snapshots, spec.FilesPerSnapshot, spec.Blocks)
	if *ingest {
		fmt.Println("godivad: ingest on: accepting pushed snapshots and subscriptions")
	}
	if *faultDrop > 0 || *faultErr > 0 || *faultSlow > 0 {
		fmt.Printf("godivad: fault injection on: drop %.0f%%, err %.0f%%, delay %.0f%% x %v (seed %d)\n",
			*faultDrop*100, *faultErr*100, *faultSlow*100, *faultWait, *faultSeed)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("godivad: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "godivad:", err)
	}
	st := srv.Stats()
	fmt.Printf("godivad: %d conns, %d RPCs, %d errors, %d faults injected, %.1f MB out\n",
		st.Conns, st.RPCs, st.Errors, st.FaultsInjected, float64(st.BytesOut)/1e6)
	fmt.Printf("godivad: reader cache: %d hits, %d opens, %d evictions\n",
		st.ReaderHits, st.ReaderOpens, st.ReaderEvicts)
	fmt.Printf("godivad: payload cache: %d hits, %d misses, %d evictions, %.1f MB served; %d batch RPCs\n",
		st.PayloadCacheHits, st.PayloadCacheMisses, st.PayloadCacheEvictions,
		float64(st.BytesServedFromCache)/1e6, st.BatchRPCs)
	if *ingest {
		ps := srv.PushStats()
		fmt.Printf("godivad: push: %d ingests, %d subscriptions, %d published, %d delivered, %d dropped\n",
			st.Ingests, st.Subscriptions, ps.Published, ps.Delivered, ps.Dropped)
	}
}
