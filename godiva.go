// Package godiva is the public interface of the GODIVA framework (General
// Object Data Interfaces for Visualization Applications): lightweight,
// database-like data management for scientific visualization codes, after
// Norris, Jiao, Fiedler, Ma and Winslett, ICDE 2004.
//
// GODIVA gives a visualization tool an in-memory database of records built
// from developer-defined schemas. The database manages data buffer
// *locations*, never contents: code queries a field buffer once by key and
// then accesses the returned slice directly, exactly like a user-allocated
// array. Around this sit the unit interfaces — AddUnit, ReadUnit, WaitUnit,
// FinishUnit, DeleteUnit — which drive background prefetching and LRU
// caching of developer-defined processing units through developer-supplied
// read functions, so the library is fully independent of file formats.
//
// A minimal batch-mode program (the paper's §3.3 example):
//
//	db := godiva.Open(godiva.Options{MemoryLimit: 400 << 20, BackgroundIO: true})
//	defer db.Close()
//	db.AddUnit("fluid_file1", readFile)
//	db.AddUnit("fluid_file2", readFile)
//	for _, f := range []string{"fluid_file1", "fluid_file2"} {
//		db.WaitUnit(f)   // overlaps the other file's input with processing
//		processUnit(db, f)
//		db.DeleteUnit(f) // batch mode: data will not be needed again
//	}
//
// The implementation lives in internal/core; this package re-exports it.
package godiva

import "godiva/internal/core"

// Re-exported types. See the internal/core documentation for details.
type (
	// DB is the GODIVA database (the paper's GODIVA Buffer Object).
	DB = core.DB
	// Options configures Open.
	Options = core.Options
	// Record is one dataset: a set of named, typed field buffers.
	Record = core.Record
	// Buffer is one field data buffer.
	Buffer = core.Buffer
	// Unit is the handle a read function receives for the processing unit
	// it is reading.
	Unit = core.Unit
	// ReadFunc reads one processing unit into the database.
	ReadFunc = core.ReadFunc
	// DataType identifies a field's element type.
	DataType = core.DataType
	// Stats is a snapshot of database counters.
	Stats = core.Stats
	// IOWorkerStats is a snapshot of one background I/O worker's counters
	// (DB.IOWorkerStats, with Options.IOWorkers).
	IOWorkerStats = core.IOWorkerStats
	// UnitInfo describes one processing unit (DB.Units).
	UnitInfo = core.UnitInfo
	// UnitEvent is one unit state transition (DB.UnitEvents, with
	// Options.TraceUnits).
	UnitEvent = core.UnitEvent
)

// Field data types and the Unknown size marker.
const (
	String  = core.String
	Bytes   = core.Bytes
	Int32   = core.Int32
	Int64   = core.Int64
	Float32 = core.Float32
	Float64 = core.Float64
	Unknown = core.Unknown
)

// DefaultMemoryLimit is used when Options.MemoryLimit is zero.
const DefaultMemoryLimit = core.DefaultMemoryLimit

// Errors. Match with errors.Is; see internal/core for semantics.
var (
	ErrClosed            = core.ErrClosed
	ErrExists            = core.ErrExists
	ErrUnknownField      = core.ErrUnknownField
	ErrUnknownRecordType = core.ErrUnknownRecordType
	ErrUnknownUnit       = core.ErrUnknownUnit
	ErrNotCommitted      = core.ErrNotCommitted
	ErrCommitted         = core.ErrCommitted
	ErrNotFound          = core.ErrNotFound
	ErrNoBuffer          = core.ErrNoBuffer
	ErrKeyCount          = core.ErrKeyCount
	ErrTypeMismatch      = core.ErrTypeMismatch
	ErrBadSize           = core.ErrBadSize
	ErrDeadlock          = core.ErrDeadlock
	ErrUnitFailed        = core.ErrUnitFailed
	ErrNoMemory          = core.ErrNoMemory
	ErrUnitState         = core.ErrUnitState
)

// Open creates a GODIVA database. The caller must Close it.
func Open(opts Options) *DB { return core.Open(opts) }
