package godiva_test

import (
	"errors"
	"testing"

	"godiva"
)

// TestPublicAPIRoundTrip exercises the whole public surface: schema
// definition, record creation, unit-based reading, key queries, caching and
// stats — using only the facade package, as an application would.
func TestPublicAPIRoundTrip(t *testing.T) {
	db := godiva.Open(godiva.Options{MemoryLimit: 1 << 20, BackgroundIO: true})
	defer db.Close()

	if err := db.DefineField("id", godiva.String, 8); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineField("values", godiva.Float64, godiva.Unknown); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRecordType("series", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertField("series", "id", true); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertField("series", "values", false); err != nil {
		t.Fatal(err)
	}
	if err := db.CommitRecordType("series"); err != nil {
		t.Fatal(err)
	}

	read := func(u *godiva.Unit) error {
		rec, err := u.NewRecord("series")
		if err != nil {
			return err
		}
		if err := rec.SetString("id", u.Name()); err != nil {
			return err
		}
		buf, err := rec.AllocFieldBuffer("values", 8*16)
		if err != nil {
			return err
		}
		vals, err := buf.Float64s()
		if err != nil {
			return err
		}
		for i := range vals {
			vals[i] = float64(i)
		}
		return u.DB().CommitRecord(rec)
	}

	if err := db.AddUnit("u1", read); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitUnit("u1"); err != nil {
		t.Fatal(err)
	}
	buf, err := db.GetFieldBuffer("series", "values", "u1")
	if err != nil {
		t.Fatal(err)
	}
	vals, err := buf.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 16 || vals[15] != 15 {
		t.Fatalf("values = %v", vals)
	}
	if err := db.FinishUnit("u1"); err != nil {
		t.Fatal(err)
	}
	if err := db.ReadUnit("u1", read); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.CacheHits != 1 || s.UnitsRead != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if err := db.DeleteUnit("u1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetFieldBuffer("series", "values", "u1"); !errors.Is(err, godiva.ErrNotFound) {
		t.Fatalf("query after delete: %v", err)
	}
}

// TestErrorValuesExported checks the re-exported sentinel errors match the
// ones the library returns.
func TestErrorValuesExported(t *testing.T) {
	db := godiva.Open(godiva.Options{})
	defer db.Close()
	if err := db.WaitUnit("nope"); !errors.Is(err, godiva.ErrUnknownUnit) {
		t.Fatalf("WaitUnit: %v", err)
	}
	if err := db.DefineField("f", godiva.Float64, 8); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineField("f", godiva.Float64, 8); !errors.Is(err, godiva.ErrExists) {
		t.Fatalf("duplicate field: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); !errors.Is(err, godiva.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}
