package godiva_test

// The benchmarks regenerate every table and figure of the paper's
// evaluation (§4.2) at reduced scale, one benchmark per experiment cell:
//
//	BenchmarkFigure3a/<test>/<version>   Engle workstation, Figure 3(a)
//	BenchmarkFigure3b/<test>/<version>   Turing cluster node, Figure 3(b)
//	BenchmarkParallelVoyager/<test>      §4.2 parallel Voyager runs
//	BenchmarkIOVolume/<test>             §4.2 I/O-volume reductions
//	BenchmarkTable1Query                 §3.1 key-query path (Table 1 schema)
//	BenchmarkUnitCycle                   unit read/finish/delete overhead
//	BenchmarkPrefetchWorkers/<n>         background I/O worker-pool scaling
//
// Custom metrics report the quantities the paper plots: total virtual
// seconds, visible-I/O virtual seconds, and MB read. Full-scale versions of
// the figures (32 snapshots, 5 reps, confidence intervals) come from
// cmd/godiva-bench.

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"godiva"
	"godiva/internal/experiments"
	"godiva/internal/platform"
	"godiva/internal/rocketeer"
)

var (
	benchOnce  sync.Once
	benchDir   string
	benchSetup experiments.Setup
	benchErr   error
)

// benchConfig writes (once) a small dataset with the full 120-block, 8-file
// structure and returns the experiment setup the benches share.
func benchConfig(b *testing.B) experiments.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "godiva-bench-")
		if benchErr != nil {
			return
		}
		s := experiments.DefaultSetup(benchDir)
		s.Spec.Mesh.NZ = 16
		s.Spec.Snapshots = 4
		actual := 6 * s.Spec.Mesh.NR * s.Spec.Mesh.NTheta * s.Spec.Mesh.NZ
		full := 6 * 4 * 120 * 160
		s.VolumeScale = float64(full) / float64(actual)
		s.Scale = 0.01
		s.Reps = 1
		s.Snapshots = 4
		benchErr = experiments.EnsureDataset(&s)
		benchSetup = s
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

// runCell benchmarks one (platform, test, version) cell, reporting the
// paper's quantities per run.
func runCell(b *testing.B, spec platform.Spec, test rocketeer.VisTest, v rocketeer.Version, load bool) {
	b.Helper()
	s := benchConfig(b)
	var total, visible float64
	var bytes int64
	for i := 0; i < b.N; i++ {
		machine := platform.New(spec, s.Scale)
		res, err := rocketeer.Run(v, rocketeer.Config{
			Test:          test,
			Spec:          s.Spec,
			Dir:           s.Dir,
			Machine:       machine,
			VolumeScale:   s.VolumeScale,
			Snapshots:     s.Snapshots,
			CompetingLoad: load,
		})
		if err != nil {
			b.Fatal(err)
		}
		total += res.Total.Seconds()
		visible += res.VisibleIO.Seconds()
		bytes = res.Disk.Bytes
	}
	b.ReportMetric(total/float64(b.N), "vtotal-s/op")
	b.ReportMetric(visible/float64(b.N), "vIO-s/op")
	b.ReportMetric(float64(bytes)/1e6, "MB-read")
}

// BenchmarkFigure3a regenerates Figure 3(a): the three visualization tests
// in the O, G and TG builds on the Engle workstation model.
func BenchmarkFigure3a(b *testing.B) {
	for _, test := range rocketeer.Tests() {
		for _, v := range []rocketeer.Version{rocketeer.VersionO, rocketeer.VersionG, rocketeer.VersionTG} {
			b.Run(fmt.Sprintf("%s/%s", test.Name, v), func(b *testing.B) {
				runCell(b, platform.Engle, test, v, false)
			})
		}
	}
}

// BenchmarkFigure3b regenerates Figure 3(b): the O, G, TG1 and TG2 builds
// on the dual-processor Turing node model.
func BenchmarkFigure3b(b *testing.B) {
	for _, test := range rocketeer.Tests() {
		cells := []struct {
			name string
			v    rocketeer.Version
			load bool
		}{
			{"O", rocketeer.VersionO, false},
			{"G", rocketeer.VersionG, false},
			{"TG1", rocketeer.VersionTG, true},
			{"TG2", rocketeer.VersionTG, false},
		}
		for _, c := range cells {
			b.Run(fmt.Sprintf("%s/%s", test.Name, c.name), func(b *testing.B) {
				runCell(b, platform.Turing, test, c.v, c.load)
			})
		}
	}
}

// BenchmarkParallelVoyager regenerates the §4.2 parallel experiment: four
// Voyager processes splitting the snapshot series across Turing nodes.
func BenchmarkParallelVoyager(b *testing.B) {
	for _, test := range rocketeer.Tests() {
		b.Run(test.Name, func(b *testing.B) {
			s := benchConfig(b)
			var reduction float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunParallel(s, test, 4)
				if err != nil {
					b.Fatal(err)
				}
				reduction += res.Reduction
			}
			b.ReportMetric(100*reduction/float64(b.N), "reduction-%")
		})
	}
}

// BenchmarkIOVolume regenerates the §4.2 I/O-volume comparison: bytes read
// by the original build vs the GODIVA build, per test.
func BenchmarkIOVolume(b *testing.B) {
	for _, test := range rocketeer.Tests() {
		b.Run(test.Name, func(b *testing.B) {
			s := benchConfig(b)
			var cut float64
			for i := 0; i < b.N; i++ {
				run := func(v rocketeer.Version) int64 {
					machine := platform.New(platform.Engle, s.Scale)
					res, err := rocketeer.Run(v, rocketeer.Config{
						Test: test, Spec: s.Spec, Dir: s.Dir,
						Machine: machine, VolumeScale: s.VolumeScale,
						Snapshots: 2,
					})
					if err != nil {
						b.Fatal(err)
					}
					return res.Disk.Bytes
				}
				o := run(rocketeer.VersionO)
				g := run(rocketeer.VersionG)
				cut += 100 * (1 - float64(g)/float64(o))
			}
			b.ReportMetric(cut/float64(b.N), "volume-cut-%")
		})
	}
}

// BenchmarkTable1Query measures the §3.1 key-lookup path on the Table 1
// schema: getFieldBuffer by (block ID, time-step ID).
func BenchmarkTable1Query(b *testing.B) {
	db := godiva.Open(godiva.Options{MemoryLimit: 1 << 28})
	defer db.Close()
	mustB(b, db.DefineField("block id", godiva.String, 11))
	mustB(b, db.DefineField("time-step id", godiva.String, 9))
	mustB(b, db.DefineField("pressure", godiva.Float64, godiva.Unknown))
	mustB(b, db.DefineRecordType("fluid", 2))
	mustB(b, db.InsertField("fluid", "block id", true))
	mustB(b, db.InsertField("fluid", "time-step id", true))
	mustB(b, db.InsertField("fluid", "pressure", false))
	mustB(b, db.CommitRecordType("fluid"))
	const blocks, steps = 120, 32
	for s := 0; s < steps; s++ {
		for blk := 0; blk < blocks; blk++ {
			rec, err := db.NewRecord("fluid")
			mustB(b, err)
			mustB(b, rec.SetString("block id", fmt.Sprintf("block_%04d", blk)))
			mustB(b, rec.SetString("time-step id", fmt.Sprintf("%08d", s)))
			if _, err := rec.AllocFieldBuffer("pressure", 800); err != nil {
				b.Fatal(err)
			}
			mustB(b, db.CommitRecord(rec))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := fmt.Sprintf("block_%04d", i%blocks)
		step := fmt.Sprintf("%08d", i%steps)
		if _, err := db.GetFieldBuffer("fluid", "pressure", blk, step); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnitCycle measures the unit machinery itself: add, wait, finish
// and delete of a unit holding one record.
func BenchmarkUnitCycle(b *testing.B) {
	db := godiva.Open(godiva.Options{MemoryLimit: 1 << 28, BackgroundIO: true})
	defer db.Close()
	mustB(b, db.DefineField("id", godiva.String, 16))
	mustB(b, db.DefineField("data", godiva.Bytes, godiva.Unknown))
	mustB(b, db.DefineRecordType("r", 1))
	mustB(b, db.InsertField("r", "id", true))
	mustB(b, db.InsertField("r", "data", false))
	mustB(b, db.CommitRecordType("r"))
	read := func(u *godiva.Unit) error {
		rec, err := u.NewRecord("r")
		if err != nil {
			return err
		}
		if err := rec.SetString("id", u.Name()); err != nil {
			return err
		}
		if _, err := rec.AllocFieldBuffer("data", 4096); err != nil {
			return err
		}
		return u.DB().CommitRecord(rec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("u%09d", i)
		if err := db.AddUnit(name, read); err != nil {
			b.Fatal(err)
		}
		if err := db.WaitUnit(name); err != nil {
			b.Fatal(err)
		}
		if err := db.FinishUnit(name); err != nil {
			b.Fatal(err)
		}
		if err := db.DeleteUnit(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrefetchWorkers measures how the background I/O pool
// (Options.IOWorkers) scales a prefetch-heavy batch run: 64 synthetic units
// with 1ms simulated reads, added up front and consumed in order.
func BenchmarkPrefetchWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			cfg := experiments.WorkerSweepConfig{ReadDelay: time.Millisecond}
			var wall, wait float64
			for i := 0; i < b.N; i++ {
				cell, err := experiments.RunWorkerCell(cfg, workers)
				if err != nil {
					b.Fatal(err)
				}
				wall += float64(cell.Wall.Microseconds()) / 1e3
				wait += float64(cell.VisibleWait.Microseconds()) / 1e3
			}
			b.ReportMetric(wall/float64(b.N), "wall-ms/op")
			b.ReportMetric(wait/float64(b.N), "wait-ms/op")
		})
	}
}

func mustB(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}
