#!/bin/sh
# Pre-merge verification gate. EXPERIMENTS.md cites this as the gate every
# change must clear. Stages:
#
#   fmt         gofmt -l finds nothing to rewrite
#   vet         go vet over the whole module
#   build       everything compiles
#   lint        godiva-lint (lockcheck/paircheck/errcheck/atomiccheck plus
#               the interprocedural deadlockcheck/leakcheck/alloccheck, the
#               flow-sensitive releasecheck/borrowcheck/wirecheck, and the
#               lockset race analysis racecheck) reports zero findings;
#               non-zero findings fail the gate, as does the suite running
#               longer than the 120s wall-clock budget (analyzer cost
#               regressions must surface here, not in every later CI run).
#               The run also writes lint.sarif for code-scanning upload.
#   dataflow    the flow-sensitive analyzers alone, in -json mode; the
#               machine-readable findings land in lint-dataflow.json (CI
#               uploads it as an artifact) and any finding fails the gate
#   racecheck   the lockset race analyzer alone, in -json mode; findings
#               land in lint-racecheck.json (CI artifact) and any finding
#               fails the gate
#   test        full test suite, caching disabled (-count=1) so the noalloc
#               AllocsPerRun gates re-measure on every run
#   benchmem    core query benchmarks under -benchmem; any benchmark
#               reporting nonzero allocs/op is an allocation regression on
#               the zero-alloc query path and fails the gate
#   race-core   race-detector pass over the concurrent core
#   race-remote race-detector pass over the remote unit service
#   race-platform race-detector pass over the virtual-machine model
#   invariants  core suite with the godivainvariants runtime checker
#               compiled in, under the race detector
#   push        subscription stress under the race detector: producers,
#               mixed-policy subscribers and subscribe/unsubscribe churn
#               against one registry (duration from VERIFY_PUSHTIME,
#               default 10s)
#   batch       payload-cache churn under the race detector: concurrent
#               fetchers and ingest invalidations against one small cache,
#               checking the pin ledger balances (duration from
#               VERIFY_BATCHTIME, default 10s)
#   fuzz        FuzzReader smoke over the shdf seed corpus (duration from
#               VERIFY_FUZZTIME, default 10s)
#
# Each stage prints a one-line summary; the script stops at the first
# failing stage and exits non-zero. Run a single stage with
# `./verify.sh -stage <name>` (e.g. `./verify.sh -stage lint`).
set -u

cd "$(dirname "$0")"

only_stage=""
if [ "${1:-}" = "-stage" ]; then
    if [ -z "${2:-}" ]; then
        echo "verify.sh: -stage requires a stage name" >&2
        exit 2
    fi
    only_stage="$2"
fi

stage_seen=0

run_stage() {
    name="$1"
    shift
    if [ -n "$only_stage" ] && [ "$name" != "$only_stage" ]; then
        return 0
    fi
    stage_seen=1
    echo "== $name: $*"
    start=$(date +%s)
    if "$@"; then
        echo "-- $name: ok ($(($(date +%s) - start))s)"
    else
        rc=$?
        echo "-- $name: FAILED (exit $rc)"
        exit "$rc"
    fi
}

check_gofmt() {
    out=$(gofmt -l .)
    if [ -n "$out" ]; then
        echo "gofmt: the following files need formatting:" >&2
        echo "$out" >&2
        return 1
    fi
}

check_benchmem() {
    out=$(go test -run '^$' \
        -bench 'BenchmarkConcurrentQuery|BenchmarkKeyLookup|BenchmarkStatsSnapshot' \
        -benchmem -benchtime 1000x -count=1 ./internal/core) || {
        echo "$out"
        return 1
    }
    echo "$out"
    bad=$(echo "$out" | awk '$NF == "allocs/op" && $(NF-1) != "0"')
    if [ -n "$bad" ]; then
        echo "benchmem: query benchmarks must stay allocation-free, but:" >&2
        echo "$bad" >&2
        return 1
    fi
}

check_dataflow() {
    # -json exits 1 on live findings and still writes them to the file, so a
    # red gate leaves the evidence behind for the CI artifact upload.
    go run ./cmd/godiva-lint -json -only releasecheck,borrowcheck,wirecheck \
        -tags godivainvariants ./... >lint-dataflow.json
    rc=$?
    echo "dataflow: $(wc -l <lint-dataflow.json) finding(s) in lint-dataflow.json"
    return "$rc"
}

check_racecheck() {
    go run ./cmd/godiva-lint -json -only racecheck \
        -tags godivainvariants ./... >lint-racecheck.json
    rc=$?
    echo "racecheck: $(wc -l <lint-racecheck.json) finding(s) in lint-racecheck.json"
    return "$rc"
}

check_lint() {
    # The full suite must stay clean AND fast: a wall-clock budget catches
    # analyzer cost regressions (a fixpoint that stops converging shows up
    # as minutes, not findings). The same run emits the SARIF log CI
    # uploads for code scanning.
    budget="${VERIFY_LINTBUDGET:-120}"
    lint_start=$(date +%s)
    go run ./cmd/godiva-lint -sarif -tags godivainvariants ./... >lint.sarif
    rc=$?
    elapsed=$(($(date +%s) - lint_start))
    echo "lint: suite took ${elapsed}s (budget ${budget}s), SARIF in lint.sarif"
    if [ "$rc" -ne 0 ]; then
        # Re-run in plain mode so the findings land in the log.
        go run ./cmd/godiva-lint -tags godivainvariants ./...
        return "$rc"
    fi
    if [ "$elapsed" -gt "$budget" ]; then
        echo "lint: suite exceeded the ${budget}s wall-clock budget" >&2
        return 1
    fi
}

run_stage fmt check_gofmt
run_stage vet go vet ./...
run_stage build go build ./...
run_stage lint check_lint
run_stage dataflow check_dataflow
run_stage racecheck check_racecheck
run_stage test go test -count=1 ./...
run_stage benchmem check_benchmem
run_stage race-core go test -race -count=1 ./internal/core/...
run_stage race-remote go test -race -count=1 ./internal/remote/...
run_stage race-platform go test -race -count=1 ./internal/platform/...
run_stage invariants go test -tags godivainvariants -race -count=1 ./internal/core/...
run_stage push env PUSH_STRESS_TIME="${VERIFY_PUSHTIME:-10s}" go test -race -count=1 -run '^TestSubscriptionStress$' ./internal/push
run_stage batch env BATCH_CHURN_TIME="${VERIFY_BATCHTIME:-10s}" go test -race -count=1 -run '^TestPayloadCacheChurn$' ./internal/remote
run_stage fuzz go test -fuzz=FuzzReader -fuzztime="${VERIFY_FUZZTIME:-10s}" -run '^FuzzReader$' ./internal/shdf

if [ -n "$only_stage" ]; then
    if [ "$stage_seen" -eq 0 ]; then
        echo "verify.sh: unknown stage \"$only_stage\"" >&2
        echo "stages: fmt vet build lint dataflow racecheck test benchmem race-core race-remote race-platform invariants push batch fuzz" >&2
        exit 2
    fi
    echo "verify.sh: stage $only_stage passed"
else
    echo "verify.sh: all checks passed"
fi
