#!/bin/sh
# Pre-merge verification: vet, build, the full test suite, and a
# race-detector pass over the concurrent core (worker pool, prefetch,
# deadlock detection). EXPERIMENTS.md cites this as the gate every change
# must clear.
set -eu

cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/core/..."
go test -race -count=1 ./internal/core/...

echo "== go test -race ./internal/remote/..."
go test -race -count=1 ./internal/remote/...

echo "verify.sh: all checks passed"
