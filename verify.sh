#!/bin/sh
# Pre-merge verification gate. EXPERIMENTS.md cites this as the gate every
# change must clear. Stages:
#
#   fmt         gofmt -l finds nothing to rewrite
#   vet         go vet over the whole module
#   build       everything compiles
#   lint        godiva-lint (lockcheck/paircheck/errcheck/atomiccheck)
#               reports zero findings; non-zero findings fail the gate
#   test        full test suite
#   race        race-detector pass over the concurrent core and the remote
#               unit service
#   invariants  core suite with the godivainvariants runtime checker
#               compiled in, under the race detector
#   fuzz        10s FuzzReader smoke over the shdf seed corpus
#
# Each stage prints a one-line summary; the script stops at the first
# failing stage and exits non-zero.
set -u

cd "$(dirname "$0")"

run_stage() {
    name="$1"
    shift
    echo "== $name: $*"
    start=$(date +%s)
    if "$@"; then
        echo "-- $name: ok ($(($(date +%s) - start))s)"
    else
        rc=$?
        echo "-- $name: FAILED (exit $rc)"
        exit "$rc"
    fi
}

check_gofmt() {
    out=$(gofmt -l .)
    if [ -n "$out" ]; then
        echo "gofmt: the following files need formatting:" >&2
        echo "$out" >&2
        return 1
    fi
}

run_stage fmt check_gofmt
run_stage vet go vet ./...
run_stage build go build ./...
run_stage lint go run ./cmd/godiva-lint -tags godivainvariants ./...
run_stage test go test ./...
run_stage race-core go test -race -count=1 ./internal/core/...
run_stage race-remote go test -race -count=1 ./internal/remote/...
run_stage invariants go test -tags godivainvariants -race -count=1 ./internal/core/...
run_stage fuzz go test -fuzz=FuzzReader -fuzztime=10s -run '^FuzzReader$' ./internal/shdf

echo "verify.sh: all checks passed"
